"""The simulated CPU.

Executes :class:`~repro.isa.instructions.Function` bodies against a
:class:`~repro.machine.memory.Memory`, with cycle accounting from
``repro.isa.costs``.  Control flow uses *real* return addresses: ``call``
pushes the byte address of the following instruction onto the simulated
stack, and ``ret`` pops a word and resolves it back to code through the
loaded image.  A corrupted return address therefore either faults
(:class:`~repro.errors.InvalidJump` → SIGSEGV) or — if the attacker wrote a
precise code address — successfully hijacks control flow, exactly the two
outcomes the attack experiments distinguish.

Flag semantics are simplified relative to real x86 (documented deviation):
``cmp a, b`` sets ``zf = (a == b)``, ``sf = (a < b signed)``,
``cf = (a < b unsigned)``; conditional jumps read those directly.  ALU ops
set ``zf``/``sf`` from their result, which is what the canary-check
``xor``/``je`` sequences rely on.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import (
    CpuLimitExceeded,
    DivisionFault,
    IllegalInstruction,
    InvalidJump,
)
from ..isa.costs import instruction_cost
from ..isa.instructions import Function, Imm, Instruction, Label, Mem, Reg, Sym
from ..isa.registers import ARG_REGS, RegisterFile
from . import jit as _jit
from .decode import CONTROL, SYNC, DecodedFunction, FunctionDecoder
from .devices import RdRandDevice, TimeStampCounter
from .memory import EXIT_ADDRESS, Memory

WORD_MASK = (1 << 64) - 1
XMM_MASK = (1 << 128) - 1
SIGN_BIT = 1 << 63


def _signed(value: int) -> int:
    """Interpret a 64-bit unsigned word as signed."""
    return value - (1 << 64) if value & SIGN_BIT else value


@dataclass
class NativeFunction:
    """A libc/helper routine implemented in host Python.

    ``handler(cpu) -> int`` reads its arguments from the ABI registers via
    ``cpu`` and returns the value to place in ``rax``.  ``cost`` is the
    simulated cycle charge per invocation.
    """

    name: str
    handler: Callable[["CPU"], int]
    cost: int = 30


class CPU:
    """One hardware thread executing simulated code.

    Parameters
    ----------
    memory:
        The process address space.
    image:
        Loaded code image; must provide ``function(name)``,
        ``address_of(name, index)``, ``resolve(address)`` and
        ``lookup(name)`` (see :class:`repro.binfmt.loader.LoadedImage`).
    natives:
        Symbol table of :class:`NativeFunction` objects consulted when a
        ``call`` target is not simulated code.
    dbi_multiplier:
        Per-instruction cycle multiplier modelling PIN-style dynamic
        binary instrumentation (1.0 = native execution).
    fast:
        Use the decode-cache fast path (default).  ``fast=False`` keeps
        the original interpret-every-step loop, which serves as the
        differential-testing oracle: both paths must produce identical
        cycles, instruction counts, memory images and exit statuses.
        The fast path is also bypassed whenever a ``trace`` hook is
        installed, since tracing observes every single step.
    """

    def __init__(
        self,
        memory: Memory,
        image,
        natives: Optional[Dict[str, NativeFunction]] = None,
        *,
        registers: Optional[RegisterFile] = None,
        tsc: Optional[TimeStampCounter] = None,
        rdrand: Optional[RdRandDevice] = None,
        cycle_limit: int = 50_000_000,
        dbi_multiplier: float = 1.0,
        fast: bool = True,
    ) -> None:
        self.memory = memory
        self.image = image
        self.natives = natives if natives is not None else {}
        self.registers = registers or RegisterFile()
        self.tsc = tsc or TimeStampCounter()
        self.rdrand = rdrand
        self.cycle_limit = cycle_limit
        self.dbi_multiplier = dbi_multiplier
        self.fast = fast
        #: Trace-JIT tier (repro.machine.jit): profile control-transfer
        #: arrivals on the fast path and compile hot straight-line runs
        #: into superblocks.  ``REPRO_JIT=0`` disables it at CPU birth.
        self.jit = _jit.jit_enabled()
        #: Fault-injection plane, set by the owning Process.  While armed
        #: the JIT stays out of the way: every step runs in the generic
        #: loop so injected faults land at the same points as ``fast=False``.
        self.fault_plane = None

        self.cycles = 0.0
        self.instructions_executed = 0
        self.running = False
        self.exit_status = 0
        self._trace: Optional[Callable[[str, int, Instruction], None]] = None
        self._trace_warned = False
        #: Optional telemetry Profiler receiving enter/close at function
        #: switches (one ``is not None`` check per switch when absent).
        self.profiler = None
        self._current: Optional[Function] = None
        #: Decode cache: function name -> DecodedFunction, valid for one
        #: image generation, one decoder binding, and one telemetry
        #: generation (see _decoded).
        self._decoder: Optional[FunctionDecoder] = None
        self._decode_cache: Dict[str, DecodedFunction] = {}
        self._decode_generation: Optional[int] = None
        self._decode_telemetry_generation: int = -1
        #: Canary group-leader maps for the slow loop, keyed by function
        #: name and invalidated on object identity (mirrors _decoded).
        self._marker_cache: Dict[str, Tuple[Function, Dict[int, str]]] = {}

    @property
    def trace(self) -> Optional[Callable[[str, int, Instruction], None]]:
        """Optional per-instruction hook for tests/debugging.

        Installing a hook forces the slow interpreter loop — it observes
        every step.  For always-on observation that keeps the fast path,
        use the sampled telemetry event stream instead (see
        docs/observability.md).
        """
        return self._trace

    @trace.setter
    def trace(
        self, hook: Optional[Callable[[str, int, Instruction], None]]
    ) -> None:
        if hook is not None and self.fast and not self._trace_warned:
            self._trace_warned = True
            warnings.warn(
                "installing a cpu.trace hook forces the slow interpreter "
                "loop; for low-overhead observation use the sampled "
                "telemetry event stream (repro.telemetry) instead",
                RuntimeWarning,
                stacklevel=2,
            )
        self._trace = hook

    # ------------------------------------------------------------------
    # operand access
    # ------------------------------------------------------------------

    def effective_address(self, mem: Mem) -> int:
        """Compute the virtual address a memory operand refers to."""
        address = mem.disp
        if mem.seg == "fs":
            address += self.registers.fs_base
        elif mem.seg is not None:
            raise IllegalInstruction(f"unsupported segment {mem.seg}")
        if mem.base is not None:
            address += self.registers.read(mem.base)
        if mem.index is not None:
            address += self.registers.read(mem.index) * mem.scale
        return address & WORD_MASK

    def read_operand(self, operand, *, width: int = 8) -> int:
        """Read an operand value (``width`` bytes for memory operands)."""
        if isinstance(operand, Reg):
            return self.registers.read(operand.name)
        if isinstance(operand, Imm):
            return operand.value & WORD_MASK
        if isinstance(operand, Mem):
            address = self.effective_address(operand)
            if width == 8:
                return self.memory.read_word(address)
            if width == 1:
                return self.memory.read_byte(address)
            if width == 16:
                low = self.memory.read_word(address)
                high = self.memory.read_word(address + 8)
                return (high << 64) | low
            raise IllegalInstruction(f"bad access width {width}")
        if isinstance(operand, Sym):
            return self.image.address_of(operand.name)
        raise IllegalInstruction(f"cannot read operand {operand!r}")

    def write_operand(self, operand, value: int, *, width: int = 8) -> None:
        """Write an operand (register or memory)."""
        if isinstance(operand, Reg):
            self.registers.write(operand.name, value)
            return
        if isinstance(operand, Mem):
            address = self.effective_address(operand)
            if width == 8:
                self.memory.write_word(address, value & WORD_MASK)
            elif width == 1:
                self.memory.write_byte(address, value & 0xFF)
            elif width == 16:
                self.memory.write_word(address, value & WORD_MASK)
                self.memory.write_word(address + 8, (value >> 64) & WORD_MASK)
            else:
                raise IllegalInstruction(f"bad access width {width}")
            return
        raise IllegalInstruction(f"cannot write operand {operand!r}")

    # ------------------------------------------------------------------
    # stack helpers
    # ------------------------------------------------------------------

    def push_word(self, value: int) -> None:
        """Decrement rsp and store a 64-bit word."""
        rsp = (self.registers.read("rsp") - 8) & WORD_MASK
        self.registers.write("rsp", rsp)
        self.memory.write_word(rsp, value & WORD_MASK)

    def pop_word(self) -> int:
        """Load a 64-bit word and increment rsp."""
        rsp = self.registers.read("rsp")
        value = self.memory.read_word(rsp)
        self.registers.write("rsp", (rsp + 8) & WORD_MASK)
        return value

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------

    def _jump_to(self, function: Function, index: int) -> None:
        self._current = function
        self.registers.rip = (function.name, index)

    def _jump_label(self, label: Label) -> None:
        function = self._current
        assert function is not None
        if label.name not in function.labels:
            raise InvalidJump(f"{function.name}: no label {label.name}")
        self.registers.rip = (function.name, function.labels[label.name])

    def _call_symbol(self, name: str) -> None:
        target = self.image.function(name)
        if target is not None:
            function, index = self.registers.rip  # already advanced past call
            return_address = self.image.address_of(function, index)
            self.push_word(return_address)
            self._jump_to(target, 0)
            return
        native = self.natives.get(name)
        if native is not None:
            self.charge(native.cost)
            result = native.handler(self)
            if result is not None:
                self.registers.write("rax", result & WORD_MASK)
            return
        raise InvalidJump(f"call to unresolved symbol {name!r}")

    def _return(self) -> None:
        address = self.pop_word()
        if address == EXIT_ADDRESS:
            self.running = False
            self.exit_status = self.registers.read("rax") & 0xFF
            return
        function, index = self.image.resolve(address)
        self._jump_to(function, index)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def charge(self, cycles: float) -> None:
        """Account simulated cycles (scaled by the DBI multiplier)."""
        scaled = cycles * self.dbi_multiplier
        self.cycles += scaled
        self.tsc.advance(int(scaled) or 1)
        if self.cycles > self.cycle_limit:
            raise CpuLimitExceeded(
                f"cycle limit {self.cycle_limit} exceeded at {self.registers.rip}"
            )

    def call_function(
        self,
        name: str,
        args: Sequence[int] = (),
        *,
        stack_pointer: Optional[int] = None,
    ) -> int:
        """Run ``name(args...)`` to completion and return its value (rax).

        Sets up the ABI registers, pushes the exit sentinel as the return
        address, and executes until the outermost ``ret``.
        """
        if len(args) > len(ARG_REGS):
            raise IllegalInstruction("more than six integer arguments")
        entry = self.image.function(name)
        if entry is None:
            native = self.natives.get(name)
            if native is None:
                raise InvalidJump(f"no such function {name!r}")
        for register, value in zip(ARG_REGS, args):
            self.registers.write(register, value)
        if stack_pointer is not None:
            self.registers.write("rsp", stack_pointer)
        if entry is None:
            native = self.natives[name]
            self.charge(native.cost)
            result = native.handler(self) or 0
            self.registers.write("rax", result & WORD_MASK)
            return result & WORD_MASK
        self.push_word(EXIT_ADDRESS)
        self._jump_to(entry, 0)
        self.running = True
        self._run_loop()
        return self.registers.read("rax")

    def _run_loop(self) -> None:
        """Execute until ``running`` drops; picks the fast or slow path.

        The trace hook observes every step, so tracing always uses the
        slow path — accounting is identical either way.  Telemetry sees
        one aggregate flush per invocation (the exact cycle/instruction
        deltas the loop computed anyway), never a per-instruction call.
        """
        start_cycles = self.cycles
        start_instructions = self.instructions_executed
        try:
            if self.fast and self._trace is None:
                self._run_loop_fast()
            else:
                self._run_loop_slow()
        finally:
            telemetry.machine_flush(
                self.cycles - start_cycles,
                self.instructions_executed - start_instructions,
            )

    def _canary_markers(self, function: Function) -> Dict[int, str]:
        """Group-leader map for ``function``, cached per object identity."""
        cached = self._marker_cache.get(function.name)
        if cached is not None and cached[0] is function:
            return cached[1]
        markers = telemetry.canary_markers(function)
        self._marker_cache[function.name] = (function, markers)
        return markers

    def _run_loop_slow(self) -> None:
        """The original interpret-every-step loop (differential oracle).

        Canary counting consults the same group-leader map the decoder
        wraps steps from, after the charge/retire point the fast path's
        wrapped closures run at — so both paths count identically, by
        construction, including on a cycle-limit trip.
        """
        hooks = telemetry.canary_hooks()
        profiler = self.profiler
        profiled: Optional[Function] = None
        marked: Optional[Function] = None
        markers: Dict[int, str] = {}
        try:
            while self.running:
                function = self._current
                name, index = self.registers.rip
                assert function is not None and function.name == name
                if index >= len(function.body):
                    raise InvalidJump(f"{name}: execution ran off the end")
                instruction = function.body[index]
                if self._trace is not None:
                    self._trace(name, index, instruction)
                if profiler is not None and function is not profiled:
                    profiled = function
                    profiler.enter(name, self.cycles)
                self.registers.rip = (name, index + 1)
                self.charge(instruction_cost(instruction))
                self.instructions_executed += 1
                if hooks is not None:
                    if function is not marked:
                        marked = function
                        markers = self._canary_markers(function)
                    if markers:
                        marker = markers.get(index)
                        if marker is not None:
                            hooks.hit(marker, name, index)
                self._dispatch(instruction)
        finally:
            if profiler is not None:
                profiler.close(self.cycles)

    # -- decode-cache fast path ------------------------------------------

    def flush_decode_cache(self) -> None:
        """Drop every cached decode (e.g. after mutating code in place)."""
        self.flush_jit_cache()
        self._decode_cache.clear()
        self._decoder = None

    def flush_jit_cache(self) -> None:
        """Drop compiled superblocks (and hotness counts), keep decodes.

        Called by :meth:`flush_decode_cache` and by the kernel at a COW
        ``clone()`` boundary — the superblocks would stay *correct* (they
        bind the surviving ``Memory`` object's accessors), but dropping
        them keeps the invalidation story uniform: no compiled code
        outlives a memory-sharing event.
        """
        dropped = 0
        for decoded in self._decode_cache.values():
            if decoded.jit_blocks:
                dropped += sum(
                    1 for block in decoded.jit_blocks.values()
                    if block is not None
                )
                decoded.jit_blocks.clear()
            if decoded.jit_counts:
                decoded.jit_counts.clear()
        if dropped:
            telemetry.count(
                "jit_invalidations_total", delta=dropped,
                help="compiled superblocks dropped by explicit flushes",
            )

    def _decoded(self, function: Function) -> DecodedFunction:
        """Fetch (or build) the decoded form of ``function`` for this CPU.

        Invalidation rules: the whole cache is dropped when the image's
        ``code_generation`` moves (rewriter patched the image), when the
        decoder's bound register file / memory / DBI multiplier no longer
        match the CPU's, and a single entry is re-decoded when the image
        maps the name to a different ``Function`` object.
        """
        decoder = self._decoder
        if (
            decoder is None
            or decoder.registers is not self.registers
            or decoder.memory is not self.memory
            or decoder.dbi_multiplier != self.dbi_multiplier
        ):
            decoder = self._decoder = FunctionDecoder(self, _DISPATCH)
            self._decode_cache.clear()
        generation = getattr(self.image, "code_generation", None)
        if generation != self._decode_generation:
            self._decode_cache.clear()
            self._decode_generation = generation
        telemetry_generation = telemetry.generation()
        if telemetry_generation != self._decode_telemetry_generation:
            # Telemetry flipped state: cached steps may hold stale (or
            # missing) canary-leader wrappers — re-decode against the
            # current hooks.
            self._decode_cache.clear()
            self._decode_telemetry_generation = telemetry_generation
        decoded = self._decode_cache.get(function.name)
        if decoded is None or decoded.function is not function:
            decoded = decoder.decode(function)
            self._decode_cache[function.name] = decoded
        return decoded

    def _run_loop_fast(self) -> None:
        """Walk pre-decoded step lists with batched cycle accounting.

        Cycle/TSC/instruction totals are accumulated locally and flushed
        to ``self.cycles`` / ``self.tsc`` / ``instructions_executed``
        before anything can observe them: SYNC steps (``rdtsc``, calls
        that may charge native costs), faults (the ``finally``), the
        cycle-limit trip, and loop exit.  The limit check itself runs
        every instruction against the local accumulator, so the trip
        point is bit-identical to the slow path's.

        The cycle accumulator folds one step at a time (``total += c``)
        rather than summing a batch and adding it to the base: DBI-scaled
        costs (×1.22, ×2.56) are not exactly representable, so float
        addition is non-associative and batch-first summation drifts off
        the slow path's sequential ``charge`` fold by a few ULPs — caught
        by the conformance fuzzer on the DCR scheme.

        Above the step loop sits the trace-JIT tier (``repro.machine.
        jit``): every control-transfer arrival is a dispatch point where
        a hot anchor is compiled into a superblock and subsequent
        arrivals run one Python call for the whole straight-line block,
        with accounting batched at block granularity (exact, because
        blocks only compile when every member cost is integral).
        Side-exits — SYNC steps, canary group-leaders, trace-hook arms,
        block ends — drop back into the step loop below with identical
        architectural state; faults mid-block reconstruct it from the
        block's prefix tables.
        """
        registers = self.registers
        tsc = self.tsc
        cycle_limit = self.cycle_limit
        cycle_total = self.cycles
        pending_ticks = 0
        pending_instructions = 0
        profiler = self.profiler
        jit_entries = 0
        jit_exits = 0
        try:
            while self.running:
                function = self._current
                assert function is not None
                decoded = self._decoded(function)
                steps = decoded.steps
                name = function.name
                if profiler is not None:
                    profiler.enter(name, cycle_total)
                blocks = (
                    decoded.jit_blocks
                    if self.jit and self.fault_plane is None
                    else None
                )
                index = registers.rip[1]
                count = len(steps)
                while True:
                    # -- JIT dispatch: one chance per control-transfer
                    # arrival.  A mid-run trace-hook arm is honoured here:
                    # the next side-exit lands on this check and no further
                    # superblock runs until the hook is removed.
                    if blocks is not None and self._trace is None:
                        sb = blocks.get(index, False)
                        if sb is False:
                            counts = decoded.jit_counts
                            hot = counts.get(index, 0) + 1
                            counts[index] = hot
                            sb = None
                            if hot >= _jit.HOT_THRESHOLD:
                                sb = _jit.compile_superblock(
                                    self, decoded, index
                                )
                                blocks[index] = sb
                        if (
                            sb is not None
                            and cycle_total + sb.cycles <= cycle_limit
                        ):
                            # (Blocks near the cycle limit fall through to
                            # the step loop, which trips at the exact
                            # instruction the slow path would.)
                            try:
                                sb.run()
                            except BaseException:
                                # Recreate the step loop's state at the
                                # faulting step: rip staged before execute,
                                # accounting charged through it.
                                k = sb.fault_index
                                cycle_total += sb.prefix_cycles[k]
                                pending_ticks += sb.prefix_ticks[k]
                                pending_instructions += k + 1
                                registers.rip = sb.rips[k]
                                raise
                            cycle_total += sb.cycles
                            pending_ticks += sb.ticks
                            pending_instructions += sb.count
                            jit_entries += 1
                            if sb.terminal:
                                if not self.running:
                                    break
                                if self._current is function:
                                    index = registers.rip[1]
                                    continue
                                break
                            jit_exits += 1
                            index = sb.end_index
                            # Re-dispatch: the side-exit index may anchor
                            # another compiled block (or close a loop back
                            # onto this one).  Unrunnable anchors fall
                            # through to the step loop below, so every
                            # iteration makes progress.
                            continue
                    # -- generic decoded-step loop (one control transfer)
                    while True:
                        if index >= count:
                            raise InvalidJump(
                                f"{name}: execution ran off the end"
                            )
                        execute, cycles, ticks, kind, next_rip = steps[index]
                        registers.rip = next_rip
                        cycle_total += cycles
                        pending_ticks += ticks
                        if cycle_total > cycle_limit:
                            # The finally clause flushes; instructions_executed
                            # excludes this instruction, matching charge().
                            raise CpuLimitExceeded(
                                f"cycle limit {cycle_limit} exceeded at "
                                f"{registers.rip}"
                            )
                        pending_instructions += 1
                        if kind == 0:
                            execute()
                            index += 1
                            continue
                        if kind & SYNC:
                            # Make accounting exact before the step can
                            # observe it (rdtsc, native charge), then re-sync
                            # afterwards because natives may have charged
                            # more cycles.
                            self.cycles = cycle_total
                            tsc.advance(pending_ticks)
                            self.instructions_executed += pending_instructions
                            pending_ticks = 0
                            pending_instructions = 0
                            try:
                                execute()
                            finally:
                                cycle_total = self.cycles
                        else:
                            execute()
                        if not (kind & CONTROL):
                            index += 1
                            continue
                        break
                    # -- after a CONTROL step
                    if not self.running:
                        break
                    if self._current is not function:
                        break
                    index = registers.rip[1]
        finally:
            self.cycles = cycle_total
            tsc.advance(pending_ticks)
            self.instructions_executed += pending_instructions
            if profiler is not None:
                profiler.close(cycle_total)
            if jit_entries:
                telemetry.jit_flush(jit_entries, jit_exits)

    # ------------------------------------------------------------------
    # instruction semantics
    # ------------------------------------------------------------------

    def _set_flags(self, result: int) -> None:
        result &= WORD_MASK
        self.registers.zf = result == 0
        self.registers.sf = bool(result & SIGN_BIT)

    def _dispatch(self, instruction: Instruction) -> None:
        op = instruction.op
        handler = _DISPATCH.get(op)
        if handler is None:
            raise IllegalInstruction(f"no semantics for {op!r}")
        handler(self, instruction)

    # Individual handlers (bound through _DISPATCH below). ---------------

    def _op_nop(self, instruction: Instruction) -> None:
        pass

    def _op_hlt(self, instruction: Instruction) -> None:
        self.running = False
        self.exit_status = self.registers.read("rax") & 0xFF

    def _op_mov(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        if isinstance(dst, Reg) and dst.name.startswith("xmm"):
            self.registers.write(dst.name, self.read_operand(src, width=8))
            return
        if isinstance(src, Reg) and src.name.startswith("xmm"):
            self.write_operand(dst, self.registers.read(src.name) & WORD_MASK)
            return
        self.write_operand(dst, self.read_operand(src))

    def _op_movb(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        value = self.read_operand(src, width=1) & 0xFF
        if isinstance(dst, Reg):
            old = self.registers.read(dst.name)
            self.registers.write(dst.name, (old & ~0xFF) | value)
        else:
            self.write_operand(dst, value, width=1)

    def _op_movzxb(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        self.write_operand(dst, self.read_operand(src, width=1) & 0xFF)

    def _op_lea(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        if isinstance(src, Mem):
            self.write_operand(dst, self.effective_address(src))
        elif isinstance(src, Sym):
            self.write_operand(dst, self.image.address_of(src.name))
        else:
            raise IllegalInstruction("lea needs a memory or symbol source")

    def _op_xchg(self, instruction: Instruction) -> None:
        a, b = instruction.operands
        va, vb = self.read_operand(a), self.read_operand(b)
        self.write_operand(a, vb)
        self.write_operand(b, va)

    def _op_push(self, instruction: Instruction) -> None:
        self.push_word(self.read_operand(instruction.operands[0]))

    def _op_pop(self, instruction: Instruction) -> None:
        self.write_operand(instruction.operands[0], self.pop_word())

    def _binary_alu(self, instruction: Instruction, combine) -> None:
        dst, src = instruction.operands
        result = combine(self.read_operand(dst), self.read_operand(src)) & WORD_MASK
        self.write_operand(dst, result)
        self._set_flags(result)

    def _op_add(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        a, b = self.read_operand(dst), self.read_operand(src)
        result = a + b
        self.registers.cf = result > WORD_MASK
        result &= WORD_MASK
        self.write_operand(dst, result)
        self._set_flags(result)

    def _op_sub(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        a, b = self.read_operand(dst), self.read_operand(src)
        self.registers.cf = a < b
        result = (a - b) & WORD_MASK
        self.write_operand(dst, result)
        self._set_flags(result)

    def _op_xor(self, instruction: Instruction) -> None:
        self._binary_alu(instruction, lambda a, b: a ^ b)
        self.registers.cf = False

    def _op_or(self, instruction: Instruction) -> None:
        self._binary_alu(instruction, lambda a, b: a | b)

    def _op_and(self, instruction: Instruction) -> None:
        self._binary_alu(instruction, lambda a, b: a & b)

    def _op_shl(self, instruction: Instruction) -> None:
        self._binary_alu(instruction, lambda a, b: a << (b & 63))

    def _op_shr(self, instruction: Instruction) -> None:
        self._binary_alu(instruction, lambda a, b: a >> (b & 63))

    def _op_sar(self, instruction: Instruction) -> None:
        self._binary_alu(instruction, lambda a, b: (_signed(a) >> (b & 63)) & WORD_MASK)

    def _op_imul(self, instruction: Instruction) -> None:
        self._binary_alu(instruction, lambda a, b: _signed(a) * _signed(b))

    def _op_idiv(self, instruction: Instruction) -> None:
        divisor = _signed(self.read_operand(instruction.operands[0]))
        if divisor == 0:
            raise DivisionFault("integer division by zero")
        dividend = _signed(self.registers.read("rax"))
        quotient = int(dividend / divisor)  # x86 truncates toward zero
        remainder = dividend - quotient * divisor
        self.registers.write("rax", quotient & WORD_MASK)
        self.registers.write("rdx", remainder & WORD_MASK)

    def _op_neg(self, instruction: Instruction) -> None:
        target = instruction.operands[0]
        result = (-self.read_operand(target)) & WORD_MASK
        self.write_operand(target, result)
        self._set_flags(result)

    def _op_not(self, instruction: Instruction) -> None:
        target = instruction.operands[0]
        self.write_operand(target, (~self.read_operand(target)) & WORD_MASK)

    def _op_inc(self, instruction: Instruction) -> None:
        target = instruction.operands[0]
        result = (self.read_operand(target) + 1) & WORD_MASK
        self.write_operand(target, result)
        self._set_flags(result)

    def _op_dec(self, instruction: Instruction) -> None:
        target = instruction.operands[0]
        result = (self.read_operand(target) - 1) & WORD_MASK
        self.write_operand(target, result)
        self._set_flags(result)

    def _op_cmp(self, instruction: Instruction) -> None:
        a, b = (self.read_operand(o) for o in instruction.operands)
        self.registers.zf = a == b
        self.registers.sf = _signed(a) < _signed(b)
        self.registers.cf = a < b

    def _op_test(self, instruction: Instruction) -> None:
        a, b = (self.read_operand(o) for o in instruction.operands)
        self._set_flags(a & b)
        self.registers.cf = False

    # -- control flow ----------------------------------------------------

    def _op_jmp(self, instruction: Instruction) -> None:
        target = instruction.operands[0]
        if isinstance(target, Label):
            self._jump_label(target)
        elif isinstance(target, Sym):
            function = self.image.function(target.name)
            if function is None:
                raise InvalidJump(f"jmp to unresolved symbol {target.name!r}")
            self._jump_to(function, 0)
        else:
            function, index = self.image.resolve(self.read_operand(target))
            self._jump_to(function, index)

    def _conditional(self, instruction: Instruction, taken: bool) -> None:
        if taken:
            target = instruction.operands[0]
            if isinstance(target, Label):
                self._jump_label(target)
            else:
                raise InvalidJump("conditional jump needs a label target")

    def _op_je(self, i: Instruction) -> None:
        self._conditional(i, self.registers.zf)

    def _op_jne(self, i: Instruction) -> None:
        self._conditional(i, not self.registers.zf)

    def _op_jl(self, i: Instruction) -> None:
        self._conditional(i, self.registers.sf)

    def _op_jle(self, i: Instruction) -> None:
        self._conditional(i, self.registers.sf or self.registers.zf)

    def _op_jg(self, i: Instruction) -> None:
        self._conditional(i, not (self.registers.sf or self.registers.zf))

    def _op_jge(self, i: Instruction) -> None:
        self._conditional(i, not self.registers.sf)

    def _op_jb(self, i: Instruction) -> None:
        self._conditional(i, self.registers.cf)

    def _op_jae(self, i: Instruction) -> None:
        self._conditional(i, not self.registers.cf)

    def _op_call(self, instruction: Instruction) -> None:
        target = instruction.operands[0]
        if isinstance(target, Sym):
            self._call_symbol(target.name)
        else:
            address = self.read_operand(target)
            function, index = self.image.resolve(address)
            name, next_index = self.registers.rip
            self.push_word(self.image.address_of(name, next_index))
            self._jump_to(function, index)

    def _op_ret(self, instruction: Instruction) -> None:
        self._return()

    def _op_leave(self, instruction: Instruction) -> None:
        self.registers.write("rsp", self.registers.read("rbp"))
        self.registers.write("rbp", self.pop_word())

    # -- special -----------------------------------------------------------

    def _op_rdrand(self, instruction: Instruction) -> None:
        if self.rdrand is None:
            raise IllegalInstruction("rdrand executed with no RNG device")
        value, ok = self.rdrand.read()
        self.write_operand(instruction.operands[0], value)
        self.registers.cf = ok

    def _op_rdtsc(self, instruction: Instruction) -> None:
        value = self.tsc.read()
        self.registers.write("rax", value & 0xFFFF_FFFF)
        self.registers.write("rdx", (value >> 32) & 0xFFFF_FFFF)

    def _op_syscall(self, instruction: Instruction) -> None:
        raise IllegalInstruction("raw syscall: kernel services are native calls")

    # -- xmm ---------------------------------------------------------------

    def _op_movq(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        if isinstance(dst, Reg) and dst.name.startswith("xmm"):
            self.registers.write(dst.name, self.read_operand(src) & WORD_MASK)
        elif isinstance(src, Reg) and src.name.startswith("xmm"):
            self.write_operand(dst, self.registers.read(src.name) & WORD_MASK)
        else:
            raise IllegalInstruction("movq needs one xmm operand")

    def _op_movhps(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        if isinstance(dst, Reg) and dst.name.startswith("xmm"):
            high = self.read_operand(src) & WORD_MASK
            low = self.registers.read(dst.name) & WORD_MASK
            self.registers.write(dst.name, (high << 64) | low)
        elif isinstance(src, Reg) and src.name.startswith("xmm"):
            self.write_operand(dst, (self.registers.read(src.name) >> 64) & WORD_MASK)
        else:
            raise IllegalInstruction("movhps needs one xmm operand")

    def _op_movdqu(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        if isinstance(dst, Reg) and dst.name.startswith("xmm"):
            self.registers.write(dst.name, self.read_operand(src, width=16))
        elif isinstance(src, Reg) and src.name.startswith("xmm"):
            self.write_operand(dst, self.registers.read(src.name), width=16)
        else:
            raise IllegalInstruction("movdqu needs one xmm operand")

    def _op_punpckhdq(self, instruction: Instruction) -> None:
        # Simplified semantics matching the paper's key-packing usage:
        # xmm.high64 = src, xmm.low64 preserved.
        dst, src = instruction.operands
        if not (isinstance(dst, Reg) and dst.name.startswith("xmm")):
            raise IllegalInstruction("punpckhdq destination must be xmm")
        high = self.read_operand(src) & WORD_MASK
        low = self.registers.read(dst.name) & WORD_MASK
        self.registers.write(dst.name, (high << 64) | low)

    def _op_comiss(self, instruction: Instruction) -> None:
        # Simplified: full 128-bit equality compare setting ZF, matching the
        # paper's use of comiss to compare recomputed vs stored ciphertext.
        a, b = instruction.operands
        va = (
            self.registers.read(a.name)
            if isinstance(a, Reg) and a.name.startswith("xmm")
            else self.read_operand(a, width=16)
        )
        vb = (
            self.registers.read(b.name)
            if isinstance(b, Reg) and b.name.startswith("xmm")
            else self.read_operand(b, width=16)
        )
        self.registers.zf = va == vb

    def _op_pxor(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        if not (isinstance(dst, Reg) and dst.name.startswith("xmm")):
            raise IllegalInstruction("pxor destination must be xmm")
        value = (
            self.registers.read(src.name)
            if isinstance(src, Reg) and src.name.startswith("xmm")
            else self.read_operand(src, width=16)
        )
        self.registers.write(dst.name, self.registers.read(dst.name) ^ value)


_DISPATCH: Dict[str, Callable[[CPU, Instruction], None]] = {
    "nop": CPU._op_nop,
    "hlt": CPU._op_hlt,
    "mov": CPU._op_mov,
    "movb": CPU._op_movb,
    "movzxb": CPU._op_movzxb,
    "lea": CPU._op_lea,
    "xchg": CPU._op_xchg,
    "push": CPU._op_push,
    "pop": CPU._op_pop,
    "add": CPU._op_add,
    "sub": CPU._op_sub,
    "xor": CPU._op_xor,
    "or": CPU._op_or,
    "and": CPU._op_and,
    "shl": CPU._op_shl,
    "shr": CPU._op_shr,
    "sar": CPU._op_sar,
    "imul": CPU._op_imul,
    "idiv": CPU._op_idiv,
    "neg": CPU._op_neg,
    "not": CPU._op_not,
    "inc": CPU._op_inc,
    "dec": CPU._op_dec,
    "cmp": CPU._op_cmp,
    "test": CPU._op_test,
    "jmp": CPU._op_jmp,
    "je": CPU._op_je,
    "jne": CPU._op_jne,
    "jl": CPU._op_jl,
    "jle": CPU._op_jle,
    "jg": CPU._op_jg,
    "jge": CPU._op_jge,
    "jb": CPU._op_jb,
    "jae": CPU._op_jae,
    "call": CPU._op_call,
    "ret": CPU._op_ret,
    "leave": CPU._op_leave,
    "rdrand": CPU._op_rdrand,
    "rdtsc": CPU._op_rdtsc,
    "syscall": CPU._op_syscall,
    "movq": CPU._op_movq,
    "movhps": CPU._op_movhps,
    "movdqu": CPU._op_movdqu,
    "punpckhdq": CPU._op_punpckhdq,
    "comiss": CPU._op_comiss,
    "pxor": CPU._op_pxor,
}
