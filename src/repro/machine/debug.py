"""Debugging and introspection tools for simulated processes.

These are the simulator's gdb: breakpoints, watchpoints, stack walking,
and frame inspection.  The attack experiments use the same facilities to
model memory-disclosure bugs; tests use them to assert on live frames.

All tools attach through the CPU's single trace hook and can be stacked
(each wraps the previous hook).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.instructions import Instruction
from ..kernel.process import Process


@dataclass
class Frame:
    """One reconstructed stack frame."""

    function: str
    rbp: int
    return_address: int
    #: Name of the function the return address points into ('' if unknown).
    caller: str = ""


def backtrace(process: Process, max_frames: int = 64) -> List[Frame]:
    """Walk the saved-rbp chain and reconstruct the call stack.

    Works mid-execution (e.g. from a breakpoint): frame 0 is the current
    function.  Stops at the first frame whose saved rbp leaves the stack
    segment — the sentinel frame set up at process start.
    """
    frames: List[Frame] = []
    stack = process.memory.segment("stack")
    rbp = process.registers.read("rbp")
    name, _ = process.registers.rip
    for _ in range(max_frames):
        if not (stack.base <= rbp < stack.end - 8):
            break
        return_address = process.memory.read_word(rbp + 8)
        caller = ""
        try:
            caller_fn, _ = process.image.resolve(return_address)
            caller = caller_fn.name
        except Exception:
            pass
        frames.append(Frame(name, rbp, return_address, caller))
        rbp = process.memory.read_word(rbp)
        name = caller or "?"
        if not caller:
            break
    return frames


@dataclass
class FrameView:
    """A snapshot of one function's frame contents."""

    function: str
    rbp: int
    frame_size: int
    words: Dict[int, int]  # rbp-relative offset (positive = below) → value
    canary_slots: List[int]

    def canaries(self) -> Dict[int, int]:
        """The canary words (offset → value)."""
        return {slot: self.words[slot] for slot in self.canary_slots
                if slot in self.words}


def inspect_frame(process: Process, *, function: Optional[str] = None) -> FrameView:
    """Snapshot the current (or named, if on top) function's frame."""
    name, _ = process.registers.rip
    if function is not None and function != name:
        raise ValueError(f"current frame belongs to {name!r}, not {function!r}")
    fn = process.image.function(name)
    rbp = process.registers.read("rbp")
    size = fn.frame_size if fn is not None else 64
    words = {}
    for offset in range(8, size + 8, 8):
        try:
            words[offset] = process.memory.read_word(rbp - offset)
        except Exception:
            break
    slots = list(fn.meta.get("canary_slots", [])) if fn is not None else []
    return FrameView(name, rbp, size, words, slots)


class Debugger:
    """Breakpoints and watchpoints over one process.

    Usage::

        dbg = Debugger(process)
        dbg.break_at("handler")                  # function entry
        dbg.watch_word(address)                  # break on change
        dbg.on_break = lambda hit: print(hit)
        process.call("handler", (n,))
        dbg.detach()

    Execution is synchronous: the callback runs inline at the break
    instant with the process paused mid-instruction-stream; it may read
    registers/memory freely.  (It must not re-enter the CPU.)
    """

    def __init__(self, process: Process) -> None:
        self.process = process
        self._breakpoints: Dict[Tuple[str, int], str] = {}
        self._watches: Dict[int, Optional[int]] = {}
        #: Callback invoked with a human-readable hit description.
        self.on_break: Optional[Callable[[str], None]] = None
        #: Chronological hit log (always recorded).
        self.hits: List[str] = []
        self._previous_trace = process.cpu.trace
        process.cpu.trace = self._trace

    # -- configuration ---------------------------------------------------------

    def break_at(self, function: str, index: int = 0, label: str = "") -> None:
        """Break when ``function``'s instruction ``index`` is about to run."""
        self._breakpoints[(function, index)] = label or f"{function}+{index}"

    def watch_word(self, address: int, label: str = "") -> None:
        """Break when the 64-bit word at ``address`` changes."""
        try:
            current = self.process.memory.read_word(address)
        except Exception:
            current = None
        self._watches[address] = current
        if label:
            self._watch_labels = getattr(self, "_watch_labels", {})
            self._watch_labels[address] = label

    def detach(self) -> None:
        """Restore the previous trace hook."""
        self.process.cpu.trace = self._previous_trace

    # -- machinery ----------------------------------------------------------------

    def _fire(self, description: str) -> None:
        self.hits.append(description)
        if self.on_break is not None:
            self.on_break(description)

    def _trace(self, name: str, index: int, instruction: Instruction) -> None:
        if self._previous_trace is not None:
            self._previous_trace(name, index, instruction)
        key = (name, index)
        if key in self._breakpoints:
            self._fire(f"breakpoint {self._breakpoints[key]}")
        for address, old in list(self._watches.items()):
            try:
                new = self.process.memory.read_word(address)
            except Exception:
                continue
            if new != old:
                self._watches[address] = new
                labels = getattr(self, "_watch_labels", {})
                what = labels.get(address, f"{address:#x}")
                old_text = "?" if old is None else f"{old:#x}"
                self._fire(
                    f"watch {what}: {old_text} -> {new:#x} at {name}+{index}"
                )


def canary_watch(process: Process, function: str) -> Debugger:
    """Convenience: watch every canary slot of ``function``'s next frame.

    Arms a breakpoint at the function entry that plants watchpoints on the
    canary slots once rbp is established (index of the first post-frame
    instruction), so overflow experiments can pinpoint the exact write
    that kills a canary.
    """
    fn = process.image.function(function)
    if fn is None:
        raise ValueError(f"no function {function!r}")
    slots = list(fn.meta.get("canary_slots", []))
    debugger = Debugger(process)

    original_trace = debugger._trace

    armed = {"done": False}

    def trace(name: str, index: int, instruction: Instruction) -> None:
        original_trace(name, index, instruction)
        if name == function and not armed["done"] and instruction.note not in (
            "frame", "spill"
        ):
            rbp = process.registers.read("rbp")
            for slot in slots:
                debugger.watch_word(rbp - slot, label=f"{function}[rbp-{slot}]")
            armed["done"] = True

    process.cpu.trace = trace
    return debugger


def architectural_snapshot(process: Process) -> Dict[str, object]:
    """Every observable the fast and slow interpreter paths must agree on.

    The decode-cache loop batches cycle/TSC accounting and specialises
    operand access, so its entire contract is "indistinguishable from the
    slow loop".  This snapshot *is* that contract, in one place: the
    differential tests and the conformance fuzzer (`repro.fuzz`) compare
    snapshots from a fast and a slow run of the same program and demand
    equality.
    """
    cpu = process.cpu
    registers = process.registers
    return {
        "state": process.state,
        "exit_status": process.exit_status,
        "signal": process.crash.signal if process.crash else "",
        "cycles": cpu.cycles,
        "tsc": cpu.tsc.value,
        "instructions": cpu.instructions_executed,
        "rip": registers.rip,
        "gpr": dict(registers.gpr),
        "xmm": dict(registers.xmm),
        "flags": (registers.zf, registers.sf, registers.cf),
        "memory": {
            segment.name: segment.tobytes()
            for segment in process.memory.segments()
        },
        "stdout": bytes(process.stdout),
    }


def snapshot_digest(process: Process) -> str:
    """Content hash of a process's architectural snapshot (hex sha256).

    A stable, canonical encoding of :func:`architectural_snapshot` —
    registers and flags as repr over sorted keys, floats through
    ``float.hex()`` so the digest survives JSON round trips, memory as
    raw segment bytes.  Post-mortem bundles store this instead of the
    snapshot itself (a full memory image per bundle would dwarf the
    flight-recorder payload) and replay proves equality by re-deriving
    the digest from the re-run slice.
    """
    snap = architectural_snapshot(process)
    digest = hashlib.sha256()

    def feed(label: str, payload: bytes) -> None:
        digest.update(label.encode())
        digest.update(len(payload).to_bytes(8, "little"))
        digest.update(payload)

    feed("state", repr(snap["state"]).encode())
    feed("exit_status", repr(snap["exit_status"]).encode())
    feed("signal", repr(snap["signal"]).encode())
    for key in ("cycles", "tsc", "instructions"):
        feed(key, float(snap[key]).hex().encode())  # type: ignore[arg-type]
    feed("rip", repr(snap["rip"]).encode())
    for bank in ("gpr", "xmm"):
        values = snap[bank]
        encoded = ";".join(
            f"{name}={values[name]!r}" for name in sorted(values)  # type: ignore[index]
        )
        feed(bank, encoded.encode())
    feed("flags", repr(snap["flags"]).encode())
    memory = snap["memory"]
    for name in sorted(memory):  # type: ignore[arg-type]
        feed(f"memory:{name}", bytes(memory[name]))  # type: ignore[index]
    feed("stdout", bytes(snap["stdout"]))  # type: ignore[arg-type]
    return digest.hexdigest()


def snapshot_divergences(fast: Dict[str, object], slow: Dict[str, object]) -> List[str]:
    """Human-readable field names where two snapshots disagree."""
    problems: List[str] = []
    for key in fast:
        if fast[key] == slow[key]:
            continue
        if key == "memory":
            fast_mem = fast[key]
            slow_mem = slow[key]
            names = set(fast_mem) | set(slow_mem)  # type: ignore[arg-type]
            for name in sorted(names):
                if fast_mem.get(name) != slow_mem.get(name):  # type: ignore[union-attr]
                    problems.append(f"memory[{name}]")
        else:
            problems.append(f"{key}: fast={fast[key]!r} slow={slow[key]!r}")
    return problems
