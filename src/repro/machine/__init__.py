"""Machine substrate: memory, TLS, devices, and the CPU executor."""

from .cpu import CPU, NativeFunction
from .devices import RdRandDevice, TimeStampCounter
from .memory import (
    CODE_BASE,
    DATA_BASE,
    EXIT_ADDRESS,
    HEAP_BASE,
    STACK_TOP,
    TLS_BASE,
    Memory,
    Segment,
    standard_memory,
)
from .tls import (
    CANARY_OFFSET,
    DCR_LIST_HEAD_OFFSET,
    DYNAGUARD_CAB_BASE_OFFSET,
    DYNAGUARD_CAB_INDEX_OFFSET,
    GLOBAL_BUFFER_BASE_OFFSET,
    GLOBAL_BUFFER_COUNT_OFFSET,
    SHADOW_C0_OFFSET,
    SHADOW_C1_OFFSET,
    TLS_MIN_SIZE,
    TlsView,
)

__all__ = [
    "CANARY_OFFSET",
    "CODE_BASE",
    "CPU",
    "DATA_BASE",
    "DCR_LIST_HEAD_OFFSET",
    "DYNAGUARD_CAB_BASE_OFFSET",
    "DYNAGUARD_CAB_INDEX_OFFSET",
    "EXIT_ADDRESS",
    "GLOBAL_BUFFER_BASE_OFFSET",
    "GLOBAL_BUFFER_COUNT_OFFSET",
    "HEAP_BASE",
    "Memory",
    "NativeFunction",
    "RdRandDevice",
    "STACK_TOP",
    "Segment",
    "SHADOW_C0_OFFSET",
    "SHADOW_C1_OFFSET",
    "TLS_BASE",
    "TLS_MIN_SIZE",
    "TimeStampCounter",
    "TlsView",
    "standard_memory",
]
