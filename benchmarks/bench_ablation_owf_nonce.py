"""Ablation: the rdtsc nonce in P-SSP-OWF (§IV-C).

"Without the nounce being included, the stack frame will have a fixed
canary that does not change with different executions ... Hence, it is
subject to the byte-by-byte attack."  We build that weakened variant and
run the attack against both.
"""

from repro.attacks.byte_by_byte import byte_by_byte_attack
from repro.attacks.oracle import ForkingServer
from repro.attacks.payloads import frame_map
from repro.core.ablations import register_ablation_schemes
from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


def _attack(scheme, max_trials=9000, seed=715):
    kernel = Kernel(seed)
    binary = build(VICTIM, scheme, name="srv")
    parent, _ = deploy(kernel, binary, scheme)
    server = ForkingServer(kernel, parent)
    frame = frame_map(binary, "handler")
    return byte_by_byte_attack(server, frame, max_trials=max_trials)


def test_owf_nonce_ablation(benchmark, run_once):
    register_ablation_schemes()

    def measure():
        return {
            "pssp-owf": _attack("pssp-owf", max_trials=3000),
            "pssp-owf-nononce": _attack("pssp-owf-nononce", max_trials=9000),
        }

    reports = run_once(measure)
    print("\n=== Ablation: OWF nonce (byte-by-byte outcomes) ===")
    for scheme, report in reports.items():
        print(f"  {scheme:18s} success={report.success} trials={report.trials} "
              f"recovered={len(report.recovered)}/24 bytes")

    # With the nonce: no accumulation, attack stalls.
    assert not reports["pssp-owf"].success
    # Without it the canary region is constant across forks: the attacker
    # recovers it byte by byte, exactly as the paper warns.
    assert reports["pssp-owf-nononce"].success
    benchmark.extra_info["with_nonce_trials"] = reports["pssp-owf"].trials
    benchmark.extra_info["without_nonce_trials"] = reports[
        "pssp-owf-nononce"
    ].trials
