"""The measured scheme-properties matrix (Table I generalised).

Every cell is an experiment: byte-by-byte campaign, fork-return probe,
leak replay, unwinding probe, per-call cycle delta — across all ten
schemes including the extensions the paper treats qualitatively.
"""

from repro.harness.matrix import properties_matrix


def test_properties_matrix(benchmark, run_once):
    matrix = run_once(lambda: properties_matrix(attack_trials=3000))
    print("\n=== Measured properties matrix ===")
    print(matrix.render())

    assert {r.scheme for r in matrix.rows if not r.brop_prevented} == {"ssp"}
    assert {r.scheme for r in matrix.rows if not r.fork_correct} == {"raf-ssp"}
    assert {r.scheme for r in matrix.rows if r.leak_resilient} == {
        "pssp-owf", "pssp-gb",
    }
    assert {r.scheme for r in matrix.rows if not r.unwinding_safe} == {
        "dcr", "pssp-gb",
    }
    # P-SSP is the cheapest BROP-preventing, fork-correct scheme.
    eligible = [
        r for r in matrix.rows if r.brop_prevented and r.fork_correct
    ]
    cheapest = min(eligible, key=lambda r: r.per_call_cycles)
    assert cheapest.scheme == "pssp"
    benchmark.extra_info["matrix"] = matrix.render()
