"""Sweep: canary overhead vs. call density.

Explains Figure 5's per-program spread from first principles: overhead is
(protected calls × per-call cycles) / total cycles, so call-dense
programs pay more.  The sweep generates synthetic programs from
loop-heavy to call-heavy and measures P-SSP and P-SSP-NT against the SSP
baseline — NT's rdrand makes the trend ~50× steeper, exactly the
fork-time-vs-call-time trade the paper's §IV-A discusses.
"""

from repro.crypto.random import EntropySource
from repro.harness.metrics import overhead_percent, run_program
from repro.workloads.generator import call_density_sweep_configs, generate_program


def test_call_density_sweep(benchmark, run_once):
    def measure():
        rows = []
        for index, config in enumerate(call_density_sweep_configs()):
            source = generate_program(config, EntropySource(1000 + index))
            base = run_program(source, "ssp", name=f"sweep{index}")
            pssp = run_program(source, "pssp", name=f"sweep{index}")
            nt = run_program(source, "pssp-nt", name=f"sweep{index}")
            assert base.exit_status == pssp.exit_status == nt.exit_status
            calls_per_kcycle = (
                config.functions * config.outer_iterations / base.cycles * 1000
            )
            rows.append(
                (
                    calls_per_kcycle,
                    overhead_percent(base, pssp),
                    overhead_percent(base, nt),
                )
            )
        return rows

    rows = run_once(measure)
    print("\n=== Sweep: overhead vs call density ===")
    print(f"{'calls/kcycle':>13s} {'pssp %':>8s} {'pssp-nt %':>10s}")
    for density, pssp, nt in rows:
        print(f"{density:13.2f} {pssp:8.3f} {nt:10.3f}")

    densities = [row[0] for row in rows]
    pssp_overheads = [row[1] for row in rows]
    nt_overheads = [row[2] for row in rows]
    # Sweep spans a real density range and overhead rises with it.
    assert max(densities) > 4 * min(densities)
    assert pssp_overheads[-1] > pssp_overheads[0]
    assert nt_overheads[-1] > nt_overheads[0]
    # rdrand makes per-call cost ~an order of magnitude heavier.
    assert nt_overheads[-1] > 8 * pssp_overheads[-1]
    benchmark.extra_info["rows"] = [
        f"{d:.2f}/kcycle pssp={p:.3f}% nt={n:.3f}%" for d, p, n in rows
    ]
