"""Regenerate Table II: code expansion per deployment vehicle.

Paper reference: compilation 0.27 %, instrumentation (dynamic) 0 %,
instrumentation (static) 2.78 %.

Fidelity note: our MiniC benchmark functions are 50–200 bytes where real
SPEC functions are kilobytes, so *percentages* scale up by that ratio;
the invariant facts are the zero dynamic expansion, the ordering
(static > compiler > dynamic = 0), and the absolute added bytes.
"""

from repro.harness.tables import table2


def test_table2(benchmark, run_once):
    result = run_once(lambda: table2())
    print("\n=== Table II (measured) ===")
    print(result.render())

    assert result.instrumentation_dynamic_expansion == 0.0
    assert 0 < result.compiler_expansion
    assert result.instrumentation_static_expansion > result.compiler_expansion
    # Compiler path adds a couple of extra mov/xor per protected function.
    assert 8 <= result.compiler_bytes_per_function <= 64
    # Static path adds one new section (~3 small functions).
    assert 100 <= result.static_bytes_added <= 500
    benchmark.extra_info["table"] = result.render()
