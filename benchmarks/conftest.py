"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures.  The
regenerators are deterministic and heavy-ish, so each runs once per
session (``rounds=1``) and attaches both the rendered artefact and the
headline numbers to ``benchmark.extra_info`` — that is the data
EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """``run_once(fn)``: execute ``fn`` exactly once under the clock."""

    def _run(fn, **extra):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        for key, value in extra.items():
            benchmark.extra_info[key] = value
        return result

    return _run
