#!/usr/bin/env python
"""Fleet campaign benchmark: million-request throughput, gated reports.

Four claims from the fleet plane are measured and gated:

* **Determinism** — a probe campaign run with ``--jobs 2`` must produce
  a report bit-identical to the serial run, and the campaign summaries
  must match the committed ``BENCH_fleet.json`` baseline field-for-field
  (every summary number is derived from seeded simulated state, so an
  exact comparison is the correct one).  A divergence is a correctness
  bug (exit 2), never waived.
* **Security story** — the per-scheme numbers must reproduce the paper:
  byte-by-byte brute force breaches ``ssp`` and nothing else, leak
  replay breaches everything but ``pssp-owf``, and every scheme with a
  canary detects smashes.  Also exit 2: if this drifts the reproduction
  is wrong, not slow.
* **Supervision under chaos** — a fixed-size chaos campaign (seeded
  fault schedules injected under live traffic) must stay jobs-invariant,
  audit cleanly, and reproduce the committed supervision numbers
  exactly: deadline reaps, breaker trips, parent restarts, quarantined
  requests, and the re-randomization-window stretch.  The chaos probe
  is the same size in both modes, so its numbers are shared between the
  ``smoke`` and ``full`` baseline sections.  Exit 2 on divergence.
* **Throughput** — the full campaign serves >= 10^6 requests, and the
  host must sustain a floor fraction of the baseline's recorded wall
  requests/sec (exit 1; wall clock is the only host-dependent number
  here).

Usage::

    python benchmarks/bench_fleet.py                    # full, 10^6 requests
    python benchmarks/bench_fleet.py --smoke            # CI-sized run
    python benchmarks/bench_fleet.py --json OUT.json    # write measurement
    python benchmarks/bench_fleet.py --no-compare       # baseline (re)generation

The committed ``benchmarks/BENCH_fleet.json`` holds one section per
mode (``smoke`` / ``full``); a run compares against the section that
matches its mode.

Exit status: 0 on success, 1 if the throughput gate fails, 2 on any
correctness divergence (jobs, baseline, or security story).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet import (  # noqa: E402
    DEFAULT_BASE_SEED,
    DEFAULT_FLEET_SCHEMES,
    TrafficConfig,
    run_fleet,
)

BASELINE = Path(__file__).resolve().parent / "BENCH_fleet.json"

#: Budgets are per scheme; the full campaign serves ~4 x 251k requests.
#: The margin over 250k absorbs leak-session slack — a slice whose last
#: request would start a 2-request leak connection stops one short — so
#: even the worst case (every slice short) clears the 10^6 acceptance
#: floor.
FULL_BUDGET = 251_000
SMOKE_BUDGET = 2_000
SLICE_REQUESTS = 1_000

#: The jobs-invariance probe (both modes): small enough to run twice.
PROBE_BUDGET = 600
PROBE_SLICE = 200
PROBE_SCHEMES = ("ssp", "pssp")

#: The chaos probe (both modes, fixed size so its gated numbers are
#: mode-independent): one surface where faults stretch the window
#: (``pssp-nt-hardened``, rdrand starvation burns guest retry cycles)
#: and one where they trip the breaker (``pssp``, preload/tear storms).
CHAOS_BUDGET = 4_000
CHAOS_SCHEMES = ("pssp", "pssp-nt-hardened")

DEFAULT_MIN_THROUGHPUT_RATIO = 0.25

#: Summary fields compared exactly against the committed baseline.
#: All are pure functions of (seed, config, scheme) — simulated cycles
#: included — so any difference is a behaviour change, not noise.
GATED_FIELDS = (
    "requests", "benign_requests", "attack_requests", "sessions",
    "detections", "crashes", "breaches", "breaches_by_kind",
    "detection_rate", "time_to_detection", "simulated_rps",
    "latency_cycles", "lost_slices", "audit_divergences",
)

#: Supervision fields gated exactly against the baseline's ``chaos``
#: section.  ``slices_retried`` is deliberately absent: retry counts
#: are host health, not measured behaviour.
SUPERVISION_GATED_FIELDS = (
    "deadline_reaps", "quarantined_requests", "breaker_trips",
    "parent_restarts", "faulted_requests", "clean_requests",
    "faulted_mean_cycles", "clean_mean_cycles", "rerand_window_stretch",
)


def measure_jobs_invariance() -> dict:
    serial = run_fleet(
        PROBE_BUDGET, schemes=PROBE_SCHEMES, slice_requests=PROBE_SLICE
    )
    pooled = run_fleet(
        PROBE_BUDGET, schemes=PROBE_SCHEMES, slice_requests=PROBE_SLICE,
        jobs=2,
    )
    return {
        "budget": PROBE_BUDGET,
        "schemes": list(PROBE_SCHEMES),
        "identical": (
            json.dumps(serial.to_json(), sort_keys=True)
            == json.dumps(pooled.to_json(), sort_keys=True)
        ),
    }


def measure_chaos() -> dict:
    kwargs = dict(
        schemes=CHAOS_SCHEMES, slice_requests=SLICE_REQUESTS, chaos=True
    )
    serial = run_fleet(CHAOS_BUDGET, **kwargs)
    pooled = run_fleet(CHAOS_BUDGET, jobs=2, **kwargs)
    return {
        "budget_per_scheme": CHAOS_BUDGET,
        "schemes": list(CHAOS_SCHEMES),
        "chaos_seed": serial.chaos_seed,
        "identical": (
            json.dumps(serial.to_json(), sort_keys=True)
            == json.dumps(pooled.to_json(), sort_keys=True)
        ),
        "lost_slices": pooled.lost_slices,
        "audit_divergences": len(pooled.audit_divergences),
        "supervision": {
            r.scheme: r.supervision_summary() for r in pooled.reports
        },
    }


def measure_campaign(budget: int) -> dict:
    start = time.perf_counter()
    report = run_fleet(budget, slice_requests=SLICE_REQUESTS, jobs=2)
    wall = time.perf_counter() - start
    return {
        "budget_per_scheme": budget,
        "slice_requests": SLICE_REQUESTS,
        "base_seed": DEFAULT_BASE_SEED,
        "schemes": list(DEFAULT_FLEET_SCHEMES),
        "config": TrafficConfig().to_json(),
        "total_requests": report.total_requests,
        "lost_slices": report.lost_slices,
        "audit_divergences": len(report.audit_divergences),
        "wall_seconds": wall,
        "wall_rps": report.total_requests / wall if wall else 0.0,
        "summaries": {r.scheme: r.summary() for r in report.reports},
    }


def check_story(summaries: dict) -> list:
    """The paper's table, asserted from the campaign summaries."""
    problems = []

    def expect(condition, message):
        if not condition:
            problems.append(message)

    expect(summaries["ssp"]["breaches_by_kind"]["brute"] > 0,
           "ssp resisted brute force (static canaries must fall)")
    for scheme in ("pssp", "pssp-nt", "pssp-owf"):
        expect(summaries[scheme]["breaches_by_kind"]["brute"] == 0,
               f"{scheme} was brute-forced despite re-randomization")
    expect(summaries["pssp"]["breaches_by_kind"]["leak"] > 0,
           "pssp resisted leak replay (only the OWF binding should)")
    expect(summaries["pssp-owf"]["breaches"] == 0,
           "pssp-owf was breached")
    for scheme, summary in summaries.items():
        expect(summary["detections"] > 0, f"{scheme} detected nothing")
        expect(summary["time_to_detection"] is not None,
               f"{scheme} has no time-to-detection")
        expect(summary["audit_divergences"] == 0,
               f"{scheme} report failed its counter audit")
    return problems


def check_chaos(chaos: dict) -> list:
    """Intrinsic chaos gates: the faults must actually land."""
    problems = []
    if chaos["lost_slices"] or chaos["audit_divergences"]:
        problems.append(
            f"chaos campaign: {chaos['lost_slices']} lost slice(s), "
            f"{chaos['audit_divergences']} audit divergence(s)"
        )
    supervision = chaos["supervision"]
    activity = sum(
        s["deadline_reaps"] + s["quarantined_requests"]
        + s["breaker_trips"] + s["parent_restarts"] + s["faulted_requests"]
        for s in supervision.values()
    )
    if activity == 0:
        problems.append(
            "chaos campaign produced no supervision activity "
            "(schedules not armed?)"
        )
    stretch = supervision.get("pssp-nt-hardened", {}).get(
        "rerand_window_stretch"
    )
    if stretch is not None and stretch <= 1.0:
        problems.append(
            "starved prologues did not stretch the re-randomization "
            f"window (stretch {stretch!r} <= 1.0)"
        )
    return problems


def compare_chaos_to_baseline(chaos: dict, baseline_chaos: dict) -> list:
    """Exact comparison of the gated supervision fields per scheme."""
    problems = []
    recorded = baseline_chaos["supervision"]
    if set(recorded) != set(chaos["supervision"]):
        return [
            f"chaos scheme set changed: baseline {sorted(recorded)} vs "
            f"measured {sorted(chaos['supervision'])}"
        ]
    for scheme, summary in chaos["supervision"].items():
        for field in SUPERVISION_GATED_FIELDS:
            want = recorded[scheme].get(field)
            got = summary.get(field)
            if got != want:
                problems.append(
                    f"chaos {scheme}.{field}: baseline {want!r} vs {got!r}"
                )
    return problems


def compare_to_baseline(campaign: dict, baseline_section: dict) -> list:
    """Exact comparison of the gated summary fields, scheme by scheme."""
    problems = []
    recorded = baseline_section["summaries"]
    if set(recorded) != set(campaign["summaries"]):
        return [
            f"scheme set changed: baseline {sorted(recorded)} vs "
            f"measured {sorted(campaign['summaries'])}"
        ]
    for scheme, summary in campaign["summaries"].items():
        for field in GATED_FIELDS:
            want = recorded[scheme].get(field)
            got = summary.get(field)
            if got != want:
                problems.append(
                    f"{scheme}.{field}: baseline {want!r} vs {got!r}"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI-sized campaign ({SMOKE_BUDGET} vs {FULL_BUDGET} "
             "requests per scheme)",
    )
    parser.add_argument(
        "--budget", type=int, default=None,
        help="override the per-scheme request budget",
    )
    parser.add_argument(
        "--json", metavar="OUT", help="write the measurement report to OUT"
    )
    parser.add_argument(
        "--no-compare", action="store_true",
        help="skip the baseline comparison (baseline regeneration)",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE),
        help="baseline file to compare against",
    )
    parser.add_argument(
        "--min-throughput-ratio", type=float,
        default=DEFAULT_MIN_THROUGHPUT_RATIO,
        help="required fraction of the baseline's wall requests/sec "
             f"(default: {DEFAULT_MIN_THROUGHPUT_RATIO})",
    )
    args = parser.parse_args(argv)

    budget = args.budget if args.budget is not None else (
        SMOKE_BUDGET if args.smoke else FULL_BUDGET
    )
    mode = "smoke" if budget < FULL_BUDGET else "full"

    probe = measure_jobs_invariance()
    campaign = measure_campaign(budget)
    chaos = measure_chaos()
    report = {
        "mode": mode,
        "cores": os.cpu_count() or 1,
        "probe": probe,
        "campaign": campaign,
        "chaos": chaos,
    }

    print(f"fleet campaign benchmark ({mode}, {report['cores']} cores)")
    print(f"  jobs probe ({probe['budget']}/scheme): "
          f"identical={probe['identical']}")
    print(f"  chaos probe ({chaos['budget_per_scheme']}/scheme, "
          f"seed {chaos['chaos_seed']}): identical={chaos['identical']}")
    for scheme, s in chaos["supervision"].items():
        stretch = s["rerand_window_stretch"]
        print(f"    {scheme:16s} quarantined {s['quarantined_requests']:>5,d} "
              f"trips {s['breaker_trips']} restarts {s['parent_restarts']} "
              f"stretch {stretch if stretch is None else f'{stretch:.4f}'}")
    print(f"  campaign: {campaign['total_requests']:,d} requests "
          f"({budget:,d}/scheme) in {campaign['wall_seconds']:.1f}s "
          f"-> {campaign['wall_rps']:,.0f} req/s wall")
    for scheme, summary in campaign["summaries"].items():
        by_kind = summary["breaches_by_kind"]
        print(f"    {scheme:10s} detect {summary['detections']:>7,d} "
              f"rate {summary['detection_rate']:.3f} "
              f"ttd {summary['time_to_detection']} "
              f"brute! {by_kind['brute']} leak! {by_kind['leak']}")

    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")

    if not probe["identical"]:
        print("PARALLEL/SERIAL DIVERGENCE (correctness bug): the jobs=2 "
              "fleet report does not match the serial report",
              file=sys.stderr)
        return 2
    if not chaos["identical"]:
        print("PARALLEL/SERIAL DIVERGENCE (correctness bug): the jobs=2 "
              "chaos report does not match the serial report",
              file=sys.stderr)
        return 2

    problems = check_story(campaign["summaries"])
    problems.extend(check_chaos(chaos))
    if mode == "full" and campaign["total_requests"] < 1_000_000:
        problems.append(
            f"full campaign served {campaign['total_requests']:,d} "
            "requests (< 10^6)"
        )
    if campaign["lost_slices"] or campaign["audit_divergences"]:
        problems.append(
            f"{campaign['lost_slices']} lost slice(s), "
            f"{campaign['audit_divergences']} audit divergence(s)"
        )
    for problem in problems:
        print(f"FLEET STORY DIVERGENCE: {problem}", file=sys.stderr)
    if problems:
        return 2

    if not args.no_compare:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path}; run with --no-compare "
                  "--json to generate one", file=sys.stderr)
            return 2
        sections = json.loads(baseline_path.read_text())
        section = sections.get(mode)
        if section is None:
            print(f"baseline has no '{mode}' section", file=sys.stderr)
            return 2
        divergences = compare_to_baseline(campaign, section["campaign"])
        baseline_chaos = section.get("chaos")
        if baseline_chaos is None:
            divergences.append(
                f"baseline '{mode}' section has no chaos section; "
                "regenerate with --no-compare --json"
            )
        else:
            divergences.extend(
                compare_chaos_to_baseline(chaos, baseline_chaos)
            )
        for line in divergences:
            print(f"BASELINE DIVERGENCE: {line}", file=sys.stderr)
        if divergences:
            return 2
        floor = section["campaign"]["wall_rps"] * args.min_throughput_ratio
        if campaign["wall_rps"] < floor:
            print(
                f"THROUGHPUT REGRESSION: {campaign['wall_rps']:,.0f} "
                f"req/s below {floor:,.0f} "
                f"({args.min_throughput_ratio:.0%} of baseline)",
                file=sys.stderr,
            )
            return 1

    print("fleet campaign gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
