"""Regenerate Table I: defence-tool comparison.

Paper reference:

=========  ==========  =========  ===========  ============
scheme     BROP prev.  Correct    compiler %   instrum. %
=========  ==========  =========  ===========  ============
SSP        No          Yes        –            –
RAF SSP    Yes         No         negligible   negligible
DynaGuard  Yes         Yes        1.5          156
DCR        Yes         Yes        NA           >24
P-SSP      Yes         Yes        0.24         1.01
=========  ==========  =========  ===========  ============
"""

from repro.harness.tables import DEFAULT_SPEC_SUBSET, table1


def test_table1(benchmark, run_once):
    result = run_once(
        lambda: table1(spec_names=DEFAULT_SPEC_SUBSET, attack_trials=4000)
    )
    print("\n=== Table I (measured) ===")
    print(result.render())

    # Shape assertions mirroring the paper's qualitative rows.
    assert result.row("ssp").brop_prevented is False
    assert result.row("raf-ssp").fork_correct is False
    for scheme in ("raf-ssp", "dynaguard", "dcr", "pssp"):
        assert result.row(scheme).brop_prevented is True
        if scheme != "raf-ssp":
            assert result.row(scheme).fork_correct is True
    assert result.row("dynaguard").instrumentation_overhead > 100
    assert result.row("dcr").instrumentation_overhead > 10
    assert result.row("pssp").compiler_overhead < 1.0
    assert result.row("pssp").instrumentation_overhead < 5.0
    benchmark.extra_info["table"] = result.render()
