"""Ablation: re-randomize at fork time (P-SSP) vs call time (P-SSP-NT).

The paper's §IV-A comparison: P-SSP is cheaper per call (no rdrand) but
needs the preload/fork wrapper; P-SSP-NT costs ~340 cycles per protected
call but deploys with zero runtime support.  Security granularity also
differs: NT gives every *frame* a distinct canary.
"""

from statistics import mean

from repro.harness.figures import figure2, frames_share_canary
from repro.harness.metrics import overhead_percent, run_program
from repro.workloads.spec import SPEC_PROGRAMS


def test_rerandomize_timing_ablation(benchmark, run_once):
    def measure():
        overheads = {"pssp": [], "pssp-nt": []}
        for program in SPEC_PROGRAMS[:8]:
            base = run_program(program.source, "ssp", name=program.name)
            for scheme in overheads:
                candidate = run_program(program.source, scheme,
                                        name=program.name)
                overheads[scheme].append(overhead_percent(base, candidate))
        return {scheme: mean(values) for scheme, values in overheads.items()}

    result = run_once(measure)
    print("\n=== Ablation: re-randomization timing (mean overhead %) ===")
    for scheme, value in result.items():
        print(f"  {scheme:8s} {value:+.3f}%")

    # Cost: per-call rdrand makes NT strictly more expensive.
    assert result["pssp-nt"] > result["pssp"]
    # Security granularity: NT's frames carry distinct canaries.
    layouts = figure2()
    assert frames_share_canary(layouts["pssp"])
    assert not frames_share_canary(layouts["pssp-nt"])
    benchmark.extra_info.update(result)
