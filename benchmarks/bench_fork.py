#!/usr/bin/env python
"""Fork scaling benchmark: COW fork cost vs. guest memory size.

``kernel.fork`` used to deep-copy the whole address space, making fork
cost linear in guest memory.  With copy-on-write paging it is O(pages
touched): cloning shares every frozen page and only the pages a side
writes afterwards are materialised.  This bench gates that property
three ways:

1. **Correctness (exit 2)** — for identically seeded kernels, a COW
   fork and an eager deep-copy fork (``REPRO_COW_FORK=0``) must produce
   bit-identical children per ``architectural_snapshot``, and the
   children must stay bit-identical after both run the same handler.
2. **Sublinearity, deterministic (exit 2)** — the number of pages
   materialised by a fork (child private pages right after the fork
   hooks ran) must not grow with the stack size.  This is a page count,
   not a timing: it is machine-independent and cannot be fooled by
   runner noise.  A 4 MB stack is ~64x the pages of a 64 KB stack; the
   fork copy-set must be identical for both.
3. **Wall clock (exit 1 with --compare)** — the measured time ratio
   ``t(largest stack) / t(smallest stack)`` must stay under a generous
   cap (linear copying would show ~64x), and the COW-vs-eager speedup
   at the largest size must stay above the committed floor.

Usage::

    python benchmarks/bench_fork.py                    # full run
    python benchmarks/bench_fork.py --smoke            # CI-sized run
    python benchmarks/bench_fork.py --json OUT.json    # write results
    python benchmarks/bench_fork.py --compare benchmarks/BENCH_fork.json

Exit status: 0 on success, 1 on a gated perf regression, 2 on a
correctness or sublinearity violation.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.deploy import build, deploy  # noqa: E402
from repro.kernel.kernel import Kernel  # noqa: E402
from repro.machine.debug import (  # noqa: E402
    architectural_snapshot,
    snapshot_divergences,
)

#: Stack sizes swept (bytes).  64 KB .. 4 MB spans a 64x page-count range.
STACK_SIZES = (0x10000, 0x40000, 0x100000, 0x400000)

#: Tolerated relative drop in the COW speedup before --compare fails.
DEFAULT_THRESHOLD = 0.25

#: Hard cap on t(largest)/t(smallest): sublinear fork keeps this near 1;
#: the old deep copy sits near the page ratio (~64).  Generous for noisy
#: runners.
WALL_RATIO_CAP = 5.0

#: Hard cap on pages a single fork may materialise (the pssp fork hook
#: refreshes the TLS shadow pair: one TLS page, plus bookkeeping slack).
MAX_PAGES_PER_FORK = 8

WORKLOAD = """
int handler(int n) {
    char buf[64];
    int i;
    for (i = 0; i < 64; i = i + 1) {
        buf[i - (i / 64) * 64] = i + n;
    }
    return buf[0] + buf[63];
}
int main() { return handler(7); }
"""


def _deploy(stack_size: int, *, seed: int = 9001):
    kernel = Kernel(seed)
    binary = build(WORKLOAD, "pssp", name="forkbench")
    process, _ = deploy(kernel, binary, "pssp", stack_size=stack_size)
    process.run()
    return kernel, process


def check_cow_eager_identity() -> list:
    """Gate 1: COW and eager forks must be bit-identical twins."""
    divergences = []
    try:
        os.environ["REPRO_COW_FORK"] = "1"
        _, parent_cow = _deploy(0x40000)
        child_cow = parent_cow.kernel.fork(parent_cow)
        os.environ["REPRO_COW_FORK"] = "0"
        _, parent_eager = _deploy(0x40000)
        child_eager = parent_eager.kernel.fork(parent_eager)
        divergences += snapshot_divergences(
            architectural_snapshot(child_cow),
            architectural_snapshot(child_eager),
        )
        # The children must also *run* identically (writes after the
        # fork exercise the write-fault path vs. plain bytearray stores).
        child_cow.call("handler", (3,))
        child_eager.call("handler", (3,))
        divergences += snapshot_divergences(
            architectural_snapshot(child_cow),
            architectural_snapshot(child_eager),
        )
        # ... and the parents must be isolated from those child writes.
        divergences += snapshot_divergences(
            architectural_snapshot(parent_cow),
            architectural_snapshot(parent_eager),
        )
    finally:
        os.environ.pop("REPRO_COW_FORK", None)
    return divergences


def measure(stack_size: int, forks: int) -> dict:
    """Median per-fork wall time + the deterministic page-copy count."""
    kernel, parent = _deploy(stack_size)
    # Warm-up fork: freezes the parent's post-run dirty pages so the
    # timed forks measure steady-state cost, exactly like a fork server.
    first = kernel.fork(parent)
    pages_copied = first.memory.page_stats()["private_pages"]
    times = []
    for _ in range(forks):
        start = time.perf_counter()
        kernel.fork(parent)
        times.append(time.perf_counter() - start)
    total_pages = parent.memory.page_stats()["pages"]
    return {
        "stack_size": stack_size,
        "total_pages": total_pages,
        "pages_copied_per_fork": pages_copied,
        "fork_us_median": statistics.median(times) * 1e6,
    }


def measure_eager(stack_size: int, forks: int) -> float:
    """Median per-fork wall time down the historical deep-copy path."""
    kernel, parent = _deploy(stack_size)
    times = []
    for _ in range(forks):
        start = time.perf_counter()
        parent.memory.clone(eager=True)
        times.append(time.perf_counter() - start)
    return statistics.median(times) * 1e6


def run(forks: int) -> dict:
    results = {"sizes": [measure(size, forks) for size in STACK_SIZES]}
    smallest, largest = results["sizes"][0], results["sizes"][-1]
    eager_us = measure_eager(STACK_SIZES[-1], max(3, forks // 4))
    results["summary"] = {
        "page_ratio": largest["total_pages"] / smallest["total_pages"],
        "wall_ratio": (
            largest["fork_us_median"] / smallest["fork_us_median"]
        ),
        "pages_copied_min": min(
            r["pages_copied_per_fork"] for r in results["sizes"]
        ),
        "pages_copied_max": max(
            r["pages_copied_per_fork"] for r in results["sizes"]
        ),
        "eager_us_median": eager_us,
        "cow_speedup": eager_us / largest["fork_us_median"],
    }
    return results


def gate_sublinear(results: dict) -> list:
    """Gate 2: deterministic page-copy checks (violations, ideally [])."""
    summary = results["summary"]
    problems = []
    if summary["pages_copied_max"] != summary["pages_copied_min"]:
        problems.append(
            "pages copied per fork grows with guest memory: "
            f"{summary['pages_copied_min']} .. {summary['pages_copied_max']}"
        )
    if summary["pages_copied_max"] > MAX_PAGES_PER_FORK:
        problems.append(
            f"fork materialises {summary['pages_copied_max']} pages "
            f"(cap {MAX_PAGES_PER_FORK})"
        )
    largest = results["sizes"][-1]
    if largest["pages_copied_per_fork"] * 16 > largest["total_pages"]:
        problems.append(
            "fork copy-set is not small relative to the address space: "
            f"{largest['pages_copied_per_fork']} of "
            f"{largest['total_pages']} pages"
        )
    return problems


def gate_compare(results: dict, baseline: dict, threshold: float) -> list:
    """Gate 3: wall-clock regressions vs. the committed baseline."""
    summary = results["summary"]
    problems = []
    if summary["wall_ratio"] > WALL_RATIO_CAP:
        problems.append(
            f"fork wall ratio {summary['wall_ratio']:.2f} exceeds cap "
            f"{WALL_RATIO_CAP} (page ratio {summary['page_ratio']:.0f}x)"
        )
    floor = baseline["summary"]["cow_speedup"] * (1 - threshold)
    if summary["cow_speedup"] < floor:
        problems.append(
            f"COW-vs-eager speedup {summary['cow_speedup']:.2f} below "
            f"baseline floor {floor:.2f}"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer timed forks)")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="gate against a committed baseline file")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="tolerated relative speedup drop "
                             "(default %(default)s)")
    args = parser.parse_args(argv)

    divergences = check_cow_eager_identity()
    if divergences:
        print("FORK CORRECTNESS FAILURE: cow/eager children diverge")
        for line in divergences:
            print(f"  {line}")
        return 2

    forks = 20 if args.smoke else 100
    results = run(forks)
    results["mode"] = "smoke" if args.smoke else "full"
    results["forks"] = forks

    for row in results["sizes"]:
        print(
            f"stack {row['stack_size']:#9x}: {row['total_pages']:5d} pages, "
            f"{row['pages_copied_per_fork']} copied/fork, "
            f"{row['fork_us_median']:8.1f} us/fork"
        )
    summary = results["summary"]
    print(
        f"wall ratio {summary['wall_ratio']:.2f} over a "
        f"{summary['page_ratio']:.0f}x page range; "
        f"COW speedup vs eager at 4M: {summary['cow_speedup']:.1f}x"
    )

    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")

    problems = gate_sublinear(results)
    if problems:
        print("SUBLINEARITY FAILURE:")
        for line in problems:
            print(f"  {line}")
        return 2

    if args.compare:
        baseline = json.loads(Path(args.compare).read_text())
        problems = gate_compare(results, baseline, args.threshold)
        if problems:
            print("PERF REGRESSION:")
            for line in problems:
                print(f"  {line}")
            return 1
        print("fork scaling gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
