"""Regenerate Table IV: database query time and memory usage.

Paper reference: MySQL 3.33 ms / 22.59 MB flat across all three builds;
SQLite 167.27 ms (167 instrumented) / 20.58 MB flat.
"""

from repro.harness.tables import table4


def test_table4(benchmark, run_once):
    result = run_once(lambda: table4())
    print("\n=== Table IV (measured) ===")
    print(result.render())

    mysql = result.results["mysql"]
    sqlite = result.results["sqlite"]
    assert 3.0 < mysql["ssp"].mean_query_ms < 3.7
    assert 160 < sqlite["ssp"].mean_query_ms < 175
    # Memory identical across builds (the paper's flat rows).
    for engine in (mysql, sqlite):
        values = {round(s.memory_mb, 2) for s in engine.values()}
        assert len(values) == 1
    # Query-time deltas negligible.
    for engine in (mysql, sqlite):
        native = engine["ssp"].mean_query_ms
        for scheme in ("pssp", "pssp-binary"):
            assert abs(engine[scheme].mean_query_ms - native) / native < 0.01
    benchmark.extra_info["table"] = result.render()
