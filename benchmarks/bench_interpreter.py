#!/usr/bin/env python
"""Interpreter throughput benchmark: fast path vs. slow oracle.

Measures simulated instructions/second on three workload shapes (ALU
loop, call-dense recursion, canary-heavy P-SSP-OWF) down both interpreter
paths, verifies the paths agree bit-for-bit on cycles and instruction
counts while doing so, and reports the fast/slow speedup per workload.

CI gating is deliberately done on the **speedup ratio**, not absolute
instrs/sec: GitHub runners vary widely in single-core speed, but the
ratio between two loops measured on the same interpreter in the same
process is stable.  A decode-cache regression (a hot mnemonic falling
off a specialiser onto the generic closure, a fast lane that stops
hitting) shows up as a ratio drop long before anyone reads a profile.

Usage::

    python benchmarks/bench_interpreter.py                  # full run
    python benchmarks/bench_interpreter.py --smoke          # CI-sized run
    python benchmarks/bench_interpreter.py --json OUT.json  # write results
    python benchmarks/bench_interpreter.py \
        --compare benchmarks/BENCH_interpreter.json  # gate

Exit status: 0 on success, 1 on a gated regression, 2 if the fast and
slow paths disagree (which is a correctness bug, not a perf problem).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.deploy import build, deploy  # noqa: E402
from repro.kernel.kernel import Kernel  # noqa: E402

#: Tolerated relative drop in a workload's fast/slow speedup before the
#: --compare gate fails the run.
DEFAULT_THRESHOLD = 0.20

ALU_LOOP = """
int main() {
    int acc; int i;
    acc = 1;
    for (i = 0; i < %ITER%; i = i + 1) {
        acc = acc + i * 3 - (acc / 7);
        acc = acc ^ (i + 11);
        if (acc > 1000000) {
            acc = acc - 1000000;
        }
    }
    return acc - (acc / 256) * 256;
}
"""

CALL_DENSE = """
int leaf(int n) {
    char buf[16];
    buf[0] = n;
    return buf[0] + 1;
}

int main() {
    int total; int i;
    total = 0;
    for (i = 0; i < %ITER%; i = i + 1) {
        total = total + leaf(i - (i / 128) * 128);
    }
    return total - (total / 256) * 256;
}
"""

CANARY_HEAVY = """
int inner(int n) {
    char buf[32];
    buf[0] = n;
    return buf[0] * 2;
}

int outer(int n) {
    char buf[48];
    int total; int i;
    total = 0;
    for (i = 0; i < 4; i = i + 1) {
        total = total + inner(n + i);
    }
    buf[0] = total;
    return buf[0];
}

int main() {
    int total; int i;
    total = 0;
    for (i = 0; i < %ITER%; i = i + 1) {
        total = total + outer(i - (i / 64) * 64);
    }
    return total - (total / 256) * 256;
}
"""

#: (name, scheme, source template, full iterations, smoke iterations)
WORKLOADS = (
    ("alu_loop", "none", ALU_LOOP, 40_000, 6_000),
    ("call_dense", "none", CALL_DENSE, 8_000, 1_200),
    ("canary_heavy", "pssp-owf", CANARY_HEAVY, 1_500, 250),
)


def run_path(source: str, scheme: str, *, fast: bool, repeats: int):
    """Run ``source`` ``repeats`` times on one path; return measurements."""
    kernel = Kernel(seed=42)
    binary = build(source, scheme, name="bench")
    process, _ = deploy(
        kernel, binary, scheme, cycle_limit=4_000_000_000, fast=fast
    )
    # Warm-up call: the fast path decodes here, and libc state settles.
    warm = process.run()
    if warm.crashed:
        raise SystemExit(f"workload crashed under {scheme}: {warm.signal}")
    instructions = 0
    start = time.perf_counter()
    for _ in range(repeats):
        result = process.call("main")
        instructions += result.instructions
    elapsed = time.perf_counter() - start
    return {
        "instructions_per_second": instructions / elapsed if elapsed else 0.0,
        "elapsed_seconds": elapsed,
        "measured_instructions": instructions,
        # Accounting totals used for the fast-vs-slow differential check.
        "cycles": process.cpu.cycles,
        "total_instructions": process.cpu.instructions_executed,
        "tsc": process.cpu.tsc.value,
        "exit_status": result.exit_status,
    }


def run_benchmark(smoke: bool, repeats: int) -> dict:
    results = {}
    divergences = []
    for name, scheme, template, full_iter, smoke_iter in WORKLOADS:
        iterations = smoke_iter if smoke else full_iter
        source = template.replace("%ITER%", str(iterations))
        fast = run_path(source, scheme, fast=True, repeats=repeats)
        slow = run_path(source, scheme, fast=False, repeats=repeats)
        for key in ("cycles", "total_instructions", "tsc", "exit_status"):
            if fast[key] != slow[key]:
                divergences.append(
                    f"{name}: {key} fast={fast[key]} slow={slow[key]}"
                )
        speedup = (
            fast["instructions_per_second"] / slow["instructions_per_second"]
            if slow["instructions_per_second"]
            else 0.0
        )
        results[name] = {
            "scheme": scheme,
            "iterations": iterations,
            "fast_instructions_per_second": fast["instructions_per_second"],
            "slow_instructions_per_second": slow["instructions_per_second"],
            "speedup": speedup,
            "cycles": fast["cycles"],
            "instructions": fast["total_instructions"],
        }
    return {
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "workloads": results,
        "divergences": divergences,
        "summary": {
            "min_speedup": min(w["speedup"] for w in results.values()),
            "geomean_speedup": _geomean(
                [w["speedup"] for w in results.values()]
            ),
        },
    }


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def gate(report: dict, baseline_path: Path, threshold: float) -> list:
    """Compare per-workload speedups against the committed baseline."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, current in report["workloads"].items():
        reference = baseline.get("workloads", {}).get(name)
        if reference is None:
            continue
        floor = reference["speedup"] * (1.0 - threshold)
        if current["speedup"] < floor:
            failures.append(
                f"{name}: speedup {current['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {reference['speedup']:.2f}x "
                f"- {threshold:.0%} tolerance)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workloads (~seconds instead of ~a minute)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed calls per workload per path (default: 3)",
    )
    parser.add_argument(
        "--json", metavar="OUT", help="write the results report to OUT"
    )
    parser.add_argument(
        "--compare", metavar="BASELINE",
        help="gate against a baseline report; non-zero exit on regression",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="tolerated relative speedup drop for --compare (default: 0.20)",
    )
    args = parser.parse_args(argv)
    if args.compare and not Path(args.compare).is_file():
        # Fail before the (multi-second) measurement, not after it.
        parser.error(f"baseline not found: {args.compare}")

    report = run_benchmark(args.smoke, args.repeats)

    print(f"interpreter benchmark ({report['mode']}, repeats={args.repeats})")
    header = f"{'workload':>14s} {'scheme':>10s} {'fast i/s':>12s} {'slow i/s':>12s} {'speedup':>8s}"
    print(header)
    for name, row in report["workloads"].items():
        print(
            f"{name:>14s} {row['scheme']:>10s} "
            f"{row['fast_instructions_per_second']:12,.0f} "
            f"{row['slow_instructions_per_second']:12,.0f} "
            f"{row['speedup']:7.2f}x"
        )
    summary = report["summary"]
    print(
        f"min speedup {summary['min_speedup']:.2f}x, "
        f"geomean {summary['geomean_speedup']:.2f}x"
    )

    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")

    if report["divergences"]:
        print("FAST/SLOW DIVERGENCE (correctness bug):", file=sys.stderr)
        for line in report["divergences"]:
            print(f"  {line}", file=sys.stderr)
        return 2

    if args.compare:
        failures = gate(report, Path(args.compare), args.threshold)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"perf gate passed (threshold {args.threshold:.0%})")

    return 0


if __name__ == "__main__":
    raise SystemExit(main())
