"""Ablation: check-in-stub vs check-inlined-in-epilogue (§V-C).

The paper folds the canary check into ``__stack_chk_fail`` so the
rewritten epilogue fits the original byte budget.  The rejected
alternative — inlining the split-xor-compare — works semantically but
grows every protected function, breaking address-layout preservation.
"""

from repro.compiler.codegen import compile_source
from repro.core.ablations import instrument_binary_inline, register_ablation_schemes
from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel
from repro.rewriter.rewrite import instrument_binary
from repro.workloads.spec import SPEC_PROGRAMS

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


def test_check_placement_ablation(benchmark, run_once):
    register_ablation_schemes()

    def measure():
        stub_growth = []
        inline_growth = []
        for program in SPEC_PROGRAMS[:8]:
            native = compile_source(program.source, protection="ssp",
                                    name=program.name)
            stub = instrument_binary(native)
            inline = instrument_binary_inline(native)
            stub_growth.append(stub.total_size() - native.total_size())
            inline_growth.append(inline.total_size() - native.total_size())
        return sum(stub_growth), sum(inline_growth)

    stub_total, inline_total = run_once(measure)
    print("\n=== Ablation: check placement (bytes added over 8 programs) ===")
    print(f"  stub-folded (paper): {stub_total:+d} B")
    print(f"  inlined (rejected):  {inline_total:+d} B")

    assert stub_total == 0          # the paper's layout-preservation win
    assert inline_total > 100       # the cost of the rejected design

    # The inline variant still *works* — the paper rejects it for layout,
    # not correctness.
    kernel = Kernel(5)
    binary = build(VICTIM, "pssp-binary-inline", name="victim")
    process, _ = deploy(kernel, binary, "pssp-binary-inline")
    process.feed_stdin(b"A" * 200)
    assert process.call("handler", (200,)).smashed
    benchmark.extra_info["stub_bytes"] = stub_total
    benchmark.extra_info["inline_bytes"] = inline_total
