"""Security benchmarks: attack-cost distributions and Theorem 1 checks.

Not a table in the paper, but the quantitative core behind §III-C and
§VI-C: the byte-by-byte cost distribution against SSP (the paper quotes
the 8×2⁷ = 1024 expectation), the stall profile against P-SSP, and the
exhaustive-search equivalence across schemes.
"""

from statistics import mean, stdev

from repro.attacks.byte_by_byte import expected_ssp_trials
from repro.attacks.exhaustive import survival_probability_montecarlo
from repro.attacks.trials import attack_campaign
from repro.parallel import default_jobs

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


def test_attack_cost_distribution(benchmark, run_once):
    # Two 8-seed campaigns, sharded across ``REPRO_JOBS`` workers (the
    # seed-ordered merge keeps the numbers identical to a serial run).
    # The smash counts come from the ``canary_smashes_detected_total``
    # counter — the defender's own view of the attack — rather than
    # from worker exit statuses.  Every refuted guess aborts the worker
    # via ``__stack_chk_fail``; a confirmed guess survives, so the
    # counters must satisfy ``smashes == trials - recovered`` exactly.
    def measure():
        jobs = default_jobs()
        ssp_report = attack_campaign(
            "ssp", base_seed=3000, repeats=8, max_trials=6000,
            source=VICTIM, jobs=jobs,
        )
        pssp_report = attack_campaign(
            "pssp", base_seed=3000, repeats=8, max_trials=2500,
            source=VICTIM, jobs=jobs,
        )
        assert not ssp_report.lost and not pssp_report.lost
        ssp_trials = []
        pssp_progress = []
        for ssp in ssp_report.trials:
            assert ssp.success
            # Telemetry agrees with the attack ledger: every trial that
            # did not confirm a byte fired __stack_chk_fail exactly once.
            assert ssp.smashes == ssp.trials - ssp.recovered_bytes
            ssp_trials.append(ssp.trials)
        for pssp in pssp_report.trials:
            assert not pssp.success
            assert pssp.smashes == pssp.trials - pssp.recovered_bytes
            pssp_progress.append(pssp.recovered_bytes)
        return ssp_trials, pssp_progress

    ssp_trials, pssp_progress = run_once(measure)
    expectation = expected_ssp_trials()
    print("\n=== Attack-cost distribution (8 seeds) ===")
    print(f"SSP trials:        mean {mean(ssp_trials):.0f} "
          f"(sd {stdev(ssp_trials):.0f}), analytic ~{expectation:.0f}, "
          f"paper quotes 1024")
    print(f"P-SSP progress:    max {max(pssp_progress)} / 16 canary bytes "
          f"before permanent stall")

    # The measured mean sits in the analytic band.
    assert 0.5 * expectation < mean(ssp_trials) < 2.0 * expectation
    # P-SSP never yields more than a sliver of false progress.
    assert max(pssp_progress) <= 3
    benchmark.extra_info["ssp_mean_trials"] = mean(ssp_trials)
    benchmark.extra_info["pssp_max_progress"] = max(pssp_progress)


def test_exhaustive_equivalence(benchmark, run_once):
    def measure():
        return {
            scheme: survival_probability_montecarlo(scheme, bits=14,
                                                    samples=150_000)
            for scheme in ("ssp", "pssp", "pssp-binary")
        }

    rates = run_once(measure)
    print("\n=== Exhaustive-search equivalence (14-bit scale) ===")
    for scheme, rate in rates.items():
        print(f"  {scheme:12s} survival {rate:.6f}")
    # Theorem-adjacent claim (§III-C1): equal width ⇒ equal strength.
    assert abs(rates["ssp"] - rates["pssp"]) < 6e-4
    # §V-C: the folded path is measurably weaker (bits/2).
    assert rates["pssp-binary"] > 20 * rates["ssp"]
