"""Security benchmarks: attack-cost distributions and Theorem 1 checks.

Not a table in the paper, but the quantitative core behind §III-C and
§VI-C: the byte-by-byte cost distribution against SSP (the paper quotes
the 8×2⁷ = 1024 expectation), the stall profile against P-SSP, and the
exhaustive-search equivalence across schemes.
"""

from statistics import mean, stdev

from repro import telemetry
from repro.attacks.byte_by_byte import byte_by_byte_attack, expected_ssp_trials
from repro.attacks.exhaustive import survival_probability_montecarlo
from repro.attacks.oracle import ForkingServer
from repro.attacks.payloads import frame_map
from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


def _campaign(scheme, seed, max_trials=6000):
    """Run one byte-by-byte campaign; return (report, telemetry smashes).

    The smash count comes from the ``canary_smashes_detected_total``
    counter — the defender's own view of the attack — rather than from
    worker exit statuses.  Every refuted guess aborts the worker via
    ``__stack_chk_fail``; a confirmed guess survives, so the counters
    must satisfy ``smashes == trials - recovered`` exactly.
    """
    kernel = Kernel(seed)
    binary = build(VICTIM, scheme, name="srv")
    parent, _ = deploy(kernel, binary, scheme)
    server = ForkingServer(kernel, parent)
    frame = frame_map(binary, "handler")
    before = telemetry.snapshot()
    report = byte_by_byte_attack(server, frame, max_trials=max_trials)
    delta = telemetry.delta(before)
    smashes = int(delta.get("canary_smashes_detected_total", 0) or 0)
    return report, smashes


def test_attack_cost_distribution(benchmark, run_once):
    def measure():
        ssp_trials = []
        pssp_progress = []
        for seed in range(8):
            ssp, ssp_smashes = _campaign("ssp", 3000 + seed)
            assert ssp.success
            # Telemetry agrees with the attack ledger: every trial that
            # did not confirm a byte fired __stack_chk_fail exactly once.
            assert ssp_smashes == ssp.trials - len(ssp.recovered)
            ssp_trials.append(ssp.trials)
            pssp, pssp_smashes = _campaign("pssp", 3000 + seed, max_trials=2500)
            assert not pssp.success
            assert pssp_smashes == pssp.trials - len(pssp.recovered)
            pssp_progress.append(len(pssp.recovered))
        return ssp_trials, pssp_progress

    ssp_trials, pssp_progress = run_once(measure)
    expectation = expected_ssp_trials()
    print("\n=== Attack-cost distribution (8 seeds) ===")
    print(f"SSP trials:        mean {mean(ssp_trials):.0f} "
          f"(sd {stdev(ssp_trials):.0f}), analytic ~{expectation:.0f}, "
          f"paper quotes 1024")
    print(f"P-SSP progress:    max {max(pssp_progress)} / 16 canary bytes "
          f"before permanent stall")

    # The measured mean sits in the analytic band.
    assert 0.5 * expectation < mean(ssp_trials) < 2.0 * expectation
    # P-SSP never yields more than a sliver of false progress.
    assert max(pssp_progress) <= 3
    benchmark.extra_info["ssp_mean_trials"] = mean(ssp_trials)
    benchmark.extra_info["pssp_max_progress"] = max(pssp_progress)


def test_exhaustive_equivalence(benchmark, run_once):
    def measure():
        return {
            scheme: survival_probability_montecarlo(scheme, bits=14,
                                                    samples=150_000)
            for scheme in ("ssp", "pssp", "pssp-binary")
        }

    rates = run_once(measure)
    print("\n=== Exhaustive-search equivalence (14-bit scale) ===")
    for scheme, rate in rates.items():
        print(f"  {scheme:12s} survival {rate:.6f}")
    # Theorem-adjacent claim (§III-C1): equal width ⇒ equal strength.
    assert abs(rates["ssp"] - rates["pssp"]) < 6e-4
    # §V-C: the folded path is measurably weaker (bits/2).
    assert rates["pssp-binary"] > 20 * rates["ssp"]
