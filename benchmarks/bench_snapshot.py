#!/usr/bin/env python
"""Snapshot determinism checker: image bytes must be a pure function.

Machine images are content-addressed and cached across workflow runs,
so their bytes must depend only on the build inputs — not on hash
randomization, dict order, process history, or the CPython minor
version.  This script gates that three ways:

1. **Cross-process determinism (exit 2)** — the same workload is built
   and snapshotted in two *fresh subprocesses* (different PYTHONHASHSEED
   by construction); the process-snapshot and spawn-image bytes must be
   identical.
2. **Restore bit-identity (exit 2)** — ``restore()`` of the image must
   match the live process per ``architectural_snapshot``, and a fork
   taken after restore must be bit-identical to a fork of the original
   (the re-randomization boundary replays exactly).
3. **Cross-version determinism** — ``--digest-out`` writes the image
   digests plus the interpreter version; CI collects one file per
   Python 3.10/3.11/3.12 matrix leg and fails if the digests differ.

Usage::

    python benchmarks/bench_snapshot.py                  # full check
    python benchmarks/bench_snapshot.py --digest-out D.json
    python benchmarks/bench_snapshot.py --emit IMG.bin   # internal

Exit status: 0 on success, 2 on any determinism or restore failure.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.deploy import build, deploy, get_scheme  # noqa: E402
from repro.kernel.kernel import Kernel  # noqa: E402
from repro.machine.debug import (  # noqa: E402
    architectural_snapshot,
    snapshot_divergences,
)
from repro.machine.snapshot import (  # noqa: E402
    dump_spawn_image,
    prepare_spawn_image,
    restore_process,
)

#: Fixed workload + seed: every invocation must produce these bytes.
SEED = 20180625  # DSN'18

WORKLOAD = """
int handler(int n) {
    char buf[48];
    int i;
    read(0, buf, 32);
    for (i = 0; i < 16; i = i + 1) {
        buf[i - (i / 48) * 48] = buf[i - (i / 48) * 48] + n;
    }
    puts(buf);
    return n + 2;
}
int main() { return handler(3); }
"""

STDIN = b"polymorphic-canary-snapshot-gate\n"


def build_workload():
    """Deterministic deployed-and-run process (the snapshot subject)."""
    binary = build(WORKLOAD, "pssp", name="snapgate")
    kernel = Kernel(SEED)
    process, _ = deploy(kernel, binary, "pssp")
    process.feed_stdin(STDIN)
    process.run()
    return binary, process


def make_images() -> dict:
    """Process snapshot + spawn image for the fixed workload."""
    binary, process = build_workload()
    spec = get_scheme("pssp")
    preloads = spec.make_runtime().preload_binaries()
    return {
        "process": process.snapshot(),
        "spawn": dump_spawn_image(
            prepare_spawn_image(binary, preloads=preloads)
        ),
    }


def check_restore() -> list:
    """Restore + post-restore fork bit-identity (problems, ideally [])."""
    problems = []
    _, process = build_workload()
    image = process.snapshot()
    restored = restore_process(image)
    problems += snapshot_divergences(
        architectural_snapshot(process), architectural_snapshot(restored)
    )
    # A restored image must re-snapshot to the same bytes (before any
    # fork below advances the kernel's entropy/pid bookkeeping).
    if restored.snapshot() != image:
        problems.append("snapshot(restore(image)) != image")
    # The fork/re-randomization boundary must replay bit-exactly: the
    # restored kernel carries the original's entropy stream and TSC epoch.
    child = process.kernel.fork(process)
    restored_child = restored.kernel.fork(restored)
    problems += snapshot_divergences(
        architectural_snapshot(child), architectural_snapshot(restored_child)
    )
    return problems


def emit(path: str) -> None:
    images = make_images()
    blob = json.dumps(
        {kind: data.hex() for kind, data in images.items()}
    ).encode("ascii")
    Path(path).write_bytes(blob)


def subprocess_images(workdir: str, tag: str) -> dict:
    out = Path(workdir) / f"images-{tag}.json"
    subprocess.run(
        [sys.executable, __file__, "--emit", str(out)],
        check=True,
        cwd=str(Path(__file__).resolve().parent.parent),
    )
    raw = json.loads(out.read_bytes())
    return {kind: bytes.fromhex(data) for kind, data in raw.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--emit", metavar="PATH",
                        help="write this process's images (internal)")
    parser.add_argument("--digest-out", metavar="PATH",
                        help="write image digests for cross-version compare")
    args = parser.parse_args(argv)

    if args.emit:
        emit(args.emit)
        return 0

    with tempfile.TemporaryDirectory() as workdir:
        first = subprocess_images(workdir, "a")
        second = subprocess_images(workdir, "b")
    local = make_images()
    failed = False
    for kind in sorted(local):
        digest = hashlib.sha256(local[kind]).hexdigest()
        same = first[kind] == second[kind] == local[kind]
        print(
            f"{kind}-image: {len(local[kind])} bytes, sha256 {digest[:16]}.. "
            f"{'deterministic' if same else 'DIVERGED ACROSS PROCESSES'}"
        )
        failed |= not same

    problems = check_restore()
    for line in problems:
        print(f"RESTORE FAILURE: {line}")
    if not problems:
        print("restore bit-identity: ok (incl. post-restore fork)")

    if args.digest_out:
        Path(args.digest_out).write_text(json.dumps({
            "python": platform.python_version(),
            "digests": {
                kind: hashlib.sha256(data).hexdigest()
                for kind, data in sorted(local.items())
            },
        }, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.digest_out}")

    return 2 if (failed or problems) else 0


if __name__ == "__main__":
    sys.exit(main())
