#!/usr/bin/env python
"""Telemetry overhead benchmark: fast path with telemetry on vs off.

The telemetry plane's contract is *zero slowdown*: machine counters are
flushed once per run loop, and only canary group-leader steps carry a
wrapped closure.  This benchmark measures that claim on the same three
workload shapes as ``bench_interpreter.py`` and gates the ratio —
telemetry-on must stay within ``--threshold`` (default 5%) of
telemetry-off throughput, by geomean across workloads.

It also re-checks the bit-identity contract: enabling telemetry must not
change a single cycle, instruction, or TSC tick of the simulated run —
a divergence is a correctness bug (exit 2), not a perf problem.

Usage::

    python benchmarks/bench_telemetry.py                  # full run
    python benchmarks/bench_telemetry.py --smoke          # CI-sized run
    python benchmarks/bench_telemetry.py --json OUT.json  # write results

The committed ``benchmarks/BENCH_telemetry.json`` records a reference
run; CI regenerates the measurement and enforces the threshold on every
push (the gate is absolute, so the reference file is a record, not a
moving baseline).

Exit status: 0 on success, 1 if overhead exceeds the threshold, 2 if
telemetry-on and telemetry-off accounting diverge.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry  # noqa: E402
from repro.core.deploy import build, deploy  # noqa: E402
from repro.kernel.kernel import Kernel  # noqa: E402

from bench_interpreter import WORKLOADS  # noqa: E402

#: Maximum tolerated geomean slowdown with telemetry enabled (1.05 = 5%).
DEFAULT_THRESHOLD = 1.05


def run_measurement(source: str, scheme: str, *, enabled: bool, repeats: int):
    """Best-of-``repeats`` fast-path throughput with telemetry on or off."""
    if enabled:
        telemetry.enable()
    else:
        telemetry.disable()
    try:
        kernel = Kernel(seed=42)
        binary = build(source, scheme, name="bench")
        process, _ = deploy(
            kernel, binary, scheme, cycle_limit=4_000_000_000, fast=True
        )
        warm = process.run()
        if warm.crashed:
            raise SystemExit(f"workload crashed under {scheme}: {warm.crash}")
        best_ips = 0.0
        instructions = 0
        for _ in range(repeats):
            start = time.perf_counter()
            result = process.call("main")
            elapsed = time.perf_counter() - start
            instructions = result.instructions
            if elapsed and instructions / elapsed > best_ips:
                best_ips = instructions / elapsed
        return {
            "instructions_per_second": best_ips,
            "instructions_per_call": instructions,
            "cycles": process.cpu.cycles,
            "total_instructions": process.cpu.instructions_executed,
            "tsc": process.cpu.tsc.value,
            "exit_status": result.exit_status,
        }
    finally:
        telemetry.enable()


def run_benchmark(smoke: bool, repeats: int) -> dict:
    results = {}
    divergences = []
    for name, scheme, template, full_iter, smoke_iter in WORKLOADS:
        iterations = smoke_iter if smoke else full_iter
        source = template.replace("%ITER%", str(iterations))
        on = run_measurement(source, scheme, enabled=True, repeats=repeats)
        off = run_measurement(source, scheme, enabled=False, repeats=repeats)
        for key in ("cycles", "total_instructions", "tsc", "exit_status"):
            if on[key] != off[key]:
                divergences.append(
                    f"{name}: {key} telemetry-on={on[key]} off={off[key]}"
                )
        overhead = (
            off["instructions_per_second"] / on["instructions_per_second"]
            if on["instructions_per_second"]
            else 0.0
        )
        results[name] = {
            "scheme": scheme,
            "iterations": iterations,
            "on_instructions_per_second": on["instructions_per_second"],
            "off_instructions_per_second": off["instructions_per_second"],
            "overhead_ratio": overhead,
        }
    ratios = [w["overhead_ratio"] for w in results.values()]
    return {
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "workloads": results,
        "divergences": divergences,
        "summary": {
            "max_overhead_ratio": max(ratios),
            "geomean_overhead_ratio": _geomean(ratios),
        },
    }


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workloads (~seconds instead of ~a minute)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed calls per workload per mode, best-of (default: 3)",
    )
    parser.add_argument(
        "--json", metavar="OUT", help="write the results report to OUT"
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="maximum geomean on/off slowdown ratio (default: 1.05)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.smoke, args.repeats)

    print(f"telemetry overhead benchmark ({report['mode']}, "
          f"repeats={args.repeats})")
    print(f"{'workload':>14s} {'scheme':>10s} {'on i/s':>12s} "
          f"{'off i/s':>12s} {'overhead':>9s}")
    for name, row in report["workloads"].items():
        print(
            f"{name:>14s} {row['scheme']:>10s} "
            f"{row['on_instructions_per_second']:12,.0f} "
            f"{row['off_instructions_per_second']:12,.0f} "
            f"{(row['overhead_ratio'] - 1.0) * 100:8.2f}%"
        )
    summary = report["summary"]
    print(
        f"geomean overhead {(summary['geomean_overhead_ratio'] - 1) * 100:.2f}%, "
        f"max {(summary['max_overhead_ratio'] - 1) * 100:.2f}% "
        f"(threshold {(args.threshold - 1) * 100:.0f}%)"
    )

    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")

    if report["divergences"]:
        print("TELEMETRY ON/OFF DIVERGENCE (correctness bug):", file=sys.stderr)
        for line in report["divergences"]:
            print(f"  {line}", file=sys.stderr)
        return 2

    if summary["geomean_overhead_ratio"] > args.threshold:
        print(
            f"TELEMETRY OVERHEAD REGRESSION: geomean "
            f"{summary['geomean_overhead_ratio']:.4f} exceeds "
            f"{args.threshold:.4f}",
            file=sys.stderr,
        )
        return 1

    print("telemetry overhead gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
