"""Regenerate the structural figures: 1, 2, 3/4, and 6."""

from repro.harness.figures import (
    figure1,
    figure2,
    figure3,
    figure6,
    frames_share_canary,
)


def test_figure1_stack_layouts(benchmark, run_once):
    result = run_once(figure1)
    print("\n=== Figure 1 (measured) ===")
    for figure in result.values():
        print(figure.render())
    assert all(len(f.canary_words) == 1 for f in result["ssp"].frames)
    assert all(len(f.canary_words) == 2 for f in result["pssp"].frames)
    for frame in result["pssp"].frames:
        words = dict(frame.canary_words)
        assert words[8] != words[16]  # C0 and C1 are distinct halves


def test_figure2_per_frame_canaries(benchmark, run_once):
    result = run_once(figure2)
    print("\n=== Figure 2 (measured) ===")
    for figure in result.values():
        print(figure.render())
    assert frames_share_canary(result["pssp"])
    assert not frames_share_canary(result["pssp-nt"])


def test_figure3_stack_chk_listings(benchmark, run_once):
    result = run_once(figure3)
    print("\n=== Figures 3/4 (rewriter output) ===")
    print(result.render())
    assert "rdi" in result.rewritten_epilogue
    assert "__GI__fortify_fail" in result.stack_chk_listing


def test_figure6_global_buffer(benchmark, run_once):
    result = run_once(figure6)
    print("\n=== Figure 6 (measured) ===")
    print(result.render())
    assert result.consistent()
    assert len(result.buffer_entries) == 2
