"""Regenerate Table V: prologue+epilogue cycles per scheme.

Paper reference (cycles): P-SSP 6, P-SSP-NT 343, P-SSP-LV 343 (2 vars) /
986 (4 vars), P-SSP-OWF 278.  Our in-order cost model reports slightly
higher absolute numbers for the cheap schemes (no superscalar overlap),
but the ratios — rdrand-dominated NT/LV, the 3× step from 2 to 4 LV
variables, OWF between P-SSP and NT — are the paper's.
"""

from repro.harness.tables import table5


def test_table5(benchmark, run_once):
    result = run_once(lambda: table5())
    print("\n=== Table V (measured) ===")
    print(result.render())

    cycles = result.cycles
    assert cycles["pssp"] < 30
    assert 300 < cycles["pssp-nt"] < 420
    assert abs(cycles["pssp-lv (2 vars)"] - cycles["pssp-nt"]) < 40
    ratio = cycles["pssp-lv (4 vars)"] / cycles["pssp-lv (2 vars)"]
    assert 2.4 < ratio < 3.4  # paper: 986/343 ≈ 2.87
    assert cycles["pssp"] < cycles["pssp-owf"] < cycles["pssp-nt"]
    # Ablation rows: the baselines' per-call bookkeeping is visible.
    assert cycles["dynaguard"] > cycles["ssp"]
    assert cycles["pssp-binary"] > cycles["pssp"]
    benchmark.extra_info["table"] = result.render()
