#!/usr/bin/env python
"""Tracing plane benchmark: identity, replay fidelity, observer overhead.

The trace plane's contract has three legs, and this benchmark gates all
of them:

1. **Jobs-N identity** — a traced campaign must produce byte-identical
   trace JSON, Perfetto export, and fleet report whether it runs serial
   or sharded (``--jobs N``).  Any drift is a determinism bug (exit 2).
2. **Replay fidelity** — every post-mortem bundle captured during a
   breachy slice must replay exactly: re-running the recorded slice
   identity regenerates the bundle byte-for-byte (exit 2 on drift).
3. **Observer overhead** — two sub-gates:

   * *traces off*: the tracing plane must leave the per-instruction
     fast path untouched — an unattached server pays one ``is not
     None`` compare per request, never per instruction.  This is
     proven by re-running ``bench_telemetry``'s on/off measurement and
     holding it to the same committed geomean ceiling
     (``--off-threshold``, default 1.05; exit 1 on regression).
   * *traces on*: attaching a tracer must not perturb the slice record
     at all (exit 2 if it does), and the real work it performs — span
     and ring bookkeeping, counter deltas, COW page stats per fork —
     must stay within ``--on-threshold`` (default 25%) of untraced
     fleet throughput by geomean across schemes (exit 1 on
     regression).

Usage::

    python benchmarks/bench_trace.py                  # full run
    python benchmarks/bench_trace.py --smoke          # CI-sized run
    python benchmarks/bench_trace.py --json OUT.json  # write results

The committed ``benchmarks/BENCH_trace.json`` records a reference run;
CI regenerates the measurement and enforces the gates on every push
(the gates are absolute, so the reference file is a record, not a
moving baseline).

Exit status: 0 on success, 1 if either overhead gate fails, 2 on an
identity, replay, or perturbation violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.campaign import run_fleet, run_fleet_slice  # noqa: E402
from repro.trace import (  # noqa: E402
    SliceTracer,
    TraceConfig,
    canonical_json,
    replay_bundle,
)

import bench_telemetry  # noqa: E402

#: Maximum tolerated traces-off fast-path slowdown — the same ceiling
#: ``bench_telemetry.py`` commits to; the trace plane must not move it.
DEFAULT_OFF_THRESHOLD = bench_telemetry.DEFAULT_THRESHOLD

#: Maximum tolerated geomean traced/untraced fleet slowdown (1.25 =
#: 25%).  Tracing on does real bounded work per request; the gate
#: catches pathological regressions, not the contractual bookkeeping.
DEFAULT_ON_THRESHOLD = 1.25

#: Slice seed and breachy scheme used for the replay-fidelity leg.
REPLAY_SCHEME = "ssp"
REPLAY_SEED = 20180625
REPLAY_BUDGET = 150


def run_identity_check(jobs_list, *, budget, slice_requests) -> dict:
    """Trace + report byte-identity across serial and sharded runs."""
    violations = []
    reference = None
    trace_config = TraceConfig(series_interval=25)
    for jobs in jobs_list:
        report = run_fleet(
            budget, schemes=("ssp", "pssp"), slice_requests=slice_requests,
            jobs=jobs, trace=trace_config,
        )
        artifacts = {
            "trace": canonical_json(report.trace.to_json()),
            "perfetto": canonical_json(report.trace.perfetto()),
            "report": canonical_json(report.to_json()),
        }
        if reference is None:
            reference = (jobs_list[0], artifacts)
            continue
        for name, blob in artifacts.items():
            if blob != reference[1][name]:
                violations.append(
                    f"{name} diverges between jobs={reference[0]} "
                    f"and jobs={jobs}"
                )
    return {"jobs": list(jobs_list), "violations": violations}


def run_replay_check() -> dict:
    """Capture real breach bundles and assert each replays exactly."""
    tracer = SliceTracer(
        REPLAY_SCHEME, REPLAY_SEED, config=TraceConfig(series_interval=25)
    )
    run_fleet_slice(
        REPLAY_SCHEME, REPLAY_SEED, request_budget=REPLAY_BUDGET,
        tracer=tracer,
    )
    violations = []
    if not tracer.trace.bundles:
        violations.append(
            f"{REPLAY_SCHEME} seed {REPLAY_SEED} captured no bundles in "
            f"{REPLAY_BUDGET} requests — replay fidelity is untested"
        )
    for bundle in tracer.trace.bundles:
        result = replay_bundle(bundle)
        if not result.ok:
            for line in result.divergences:
                violations.append(
                    f"bundle {bundle['trigger']}#{bundle['ordinal']}: {line}"
                )
    return {"bundles": len(tracer.trace.bundles), "violations": violations}


def _time_slice(scheme, *, budget, traced, repeats):
    """Best-of-``repeats`` requests/second for one slice, on or off."""
    best_rps = 0.0
    record = None
    for _ in range(repeats):
        tracer = (
            SliceTracer(scheme, REPLAY_SEED,
                        config=TraceConfig(series_interval=25))
            if traced else None
        )
        start = time.perf_counter()
        record = run_fleet_slice(
            scheme, REPLAY_SEED, request_budget=budget, tracer=tracer
        )
        elapsed = time.perf_counter() - start
        if elapsed and record.requests / elapsed > best_rps:
            best_rps = record.requests / elapsed
    return best_rps, record


def run_overhead_check(*, budget, repeats, schemes=("ssp", "pssp")) -> dict:
    """Traced vs untraced fleet throughput, plus perturbation check."""
    workloads = {}
    violations = []
    for scheme in schemes:
        run_fleet_slice(scheme, REPLAY_SEED, request_budget=20)  # warm-up
        off_rps, off_record = _time_slice(
            scheme, budget=budget, traced=False, repeats=repeats
        )
        on_rps, on_record = _time_slice(
            scheme, budget=budget, traced=True, repeats=repeats
        )
        if on_record.to_json() != off_record.to_json():
            violations.append(
                f"{scheme}: tracing perturbed the slice record"
            )
        workloads[scheme] = {
            "requests": budget,
            "on_requests_per_second": on_rps,
            "off_requests_per_second": off_rps,
            "overhead_ratio": off_rps / on_rps if on_rps else 0.0,
        }
    ratios = [w["overhead_ratio"] for w in workloads.values()]
    return {
        "workloads": workloads,
        "violations": violations,
        "summary": {
            "max_overhead_ratio": max(ratios),
            "geomean_overhead_ratio": _geomean(ratios),
        },
    }


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 0.0


def run_benchmark(smoke: bool, repeats: int) -> dict:
    if smoke:
        jobs_list, budget, slice_requests = (1, 2), 200, 100
        overhead_budget = 200
    else:
        jobs_list, budget, slice_requests = (1, 2, 4), 400, 100
        overhead_budget = 200
    # Timing legs run first: the identity leg churns six campaigns of
    # garbage and would skew the throughput comparison behind it.
    overhead = run_overhead_check(budget=overhead_budget, repeats=repeats)
    fast_path = bench_telemetry.run_benchmark(smoke, repeats)
    return {
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "identity": run_identity_check(
            jobs_list, budget=budget, slice_requests=slice_requests
        ),
        "replay": run_replay_check(),
        "overhead": overhead,
        "fast_path": {
            "divergences": fast_path["divergences"],
            "summary": fast_path["summary"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized campaign (jobs {1,2}, smaller budgets)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed slices per scheme per mode, best-of (default: 3)",
    )
    parser.add_argument(
        "--json", metavar="OUT", help="write the results report to OUT"
    )
    parser.add_argument(
        "--on-threshold", type=float, default=DEFAULT_ON_THRESHOLD,
        help="maximum geomean traced/untraced fleet slowdown "
             "(default: 1.25)",
    )
    parser.add_argument(
        "--off-threshold", type=float, default=DEFAULT_OFF_THRESHOLD,
        help="maximum geomean telemetry fast-path slowdown with traces "
             "off (default: 1.05, bench_telemetry's ceiling)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.smoke, args.repeats)

    identity = report["identity"]
    replay = report["replay"]
    overhead = report["overhead"]
    print(f"trace plane benchmark ({report['mode']}, repeats={args.repeats})")
    print(f"identity: jobs {identity['jobs']} -> "
          f"{'IDENTICAL' if not identity['violations'] else 'DIVERGED'}")
    print(f"replay:   {replay['bundles']} bundle(s) -> "
          f"{'EXACT' if not replay['violations'] else 'DIVERGED'}")
    print(f"{'scheme':>10s} {'traced r/s':>12s} {'untraced r/s':>13s} "
          f"{'overhead':>9s}")
    for scheme, row in overhead["workloads"].items():
        print(
            f"{scheme:>10s} {row['on_requests_per_second']:12,.1f} "
            f"{row['off_requests_per_second']:13,.1f} "
            f"{(row['overhead_ratio'] - 1.0) * 100:8.2f}%"
        )
    summary = overhead["summary"]
    print(
        f"traced geomean overhead "
        f"{(summary['geomean_overhead_ratio'] - 1) * 100:.2f}%, "
        f"max {(summary['max_overhead_ratio'] - 1) * 100:.2f}% "
        f"(threshold {(args.on_threshold - 1) * 100:.0f}%)"
    )
    fast_path = report["fast_path"]["summary"]
    print(
        f"traces-off fast path geomean "
        f"{(fast_path['geomean_overhead_ratio'] - 1) * 100:.2f}% "
        f"(threshold {(args.off_threshold - 1) * 100:.0f}%)"
    )

    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")

    violations = (
        identity["violations"] + replay["violations"]
        + overhead["violations"] + report["fast_path"]["divergences"]
    )
    if violations:
        print("TRACE DETERMINISM VIOLATION (correctness bug):",
              file=sys.stderr)
        for line in violations:
            print(f"  {line}", file=sys.stderr)
        return 2

    failed = []
    if summary["geomean_overhead_ratio"] > args.on_threshold:
        failed.append(
            f"tracing-on geomean {summary['geomean_overhead_ratio']:.4f} "
            f"exceeds {args.on_threshold:.4f}"
        )
    if fast_path["geomean_overhead_ratio"] > args.off_threshold:
        failed.append(
            f"traces-off fast path geomean "
            f"{fast_path['geomean_overhead_ratio']:.4f} exceeds "
            f"{args.off_threshold:.4f}"
        )
    if failed:
        print("TRACE OVERHEAD REGRESSION:", file=sys.stderr)
        for line in failed:
            print(f"  {line}", file=sys.stderr)
        return 1

    print("trace plane gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
