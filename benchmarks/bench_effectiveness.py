"""Regenerate §VI-C: effectiveness and compatibility.

Paper reference: byte-by-byte attacks succeed against SSP-compiled Nginx
and Ali; the same scripts fail against the P-SSP builds.  Mixed
SSP/P-SSP builds (program vs libraries) behave normally with no false
positives.
"""

from repro.attacks.byte_by_byte import expected_ssp_trials
from repro.harness.tables import effectiveness


def test_effectiveness(benchmark, run_once):
    result = run_once(lambda: effectiveness(max_trials=4000, compat_runs=3))
    print("\n=== §VI-C effectiveness (measured) ===")
    print(result.render())

    by_key = {(r.server, r.scheme): r for r in result.rows}
    for server in ("nginx", "ali"):
        assert by_key[(server, "ssp")].attack_succeeded
        assert not by_key[(server, "pssp")].attack_succeeded
        # SSP falls in the ~1024-trial band the paper quotes.
        assert by_key[(server, "ssp")].trials < 3 * expected_ssp_trials()
    assert result.compat_false_positives == 0
    benchmark.extra_info["report"] = result.render()
