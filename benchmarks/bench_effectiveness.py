"""Regenerate §VI-C: effectiveness and compatibility.

Paper reference: byte-by-byte attacks succeed against SSP-compiled Nginx
and Ali; the same scripts fail against the P-SSP builds.  Mixed
SSP/P-SSP builds (program vs libraries) behave normally with no false
positives.
"""

from repro.attacks.byte_by_byte import expected_ssp_trials
from repro.harness.tables import effectiveness
from repro.parallel import default_jobs


def test_effectiveness(benchmark, run_once):
    result = run_once(lambda: effectiveness(
        max_trials=4000, compat_runs=3, jobs=default_jobs()
    ))
    print("\n=== §VI-C effectiveness (measured) ===")
    print(result.render())

    by_key = {(r.server, r.scheme): r for r in result.rows}
    for server in ("nginx", "ali"):
        ssp = by_key[(server, "ssp")]
        pssp = by_key[(server, "pssp")]
        assert ssp.attack_succeeded
        assert not pssp.attack_succeeded
        # SSP falls in the ~1024-trial band the paper quotes.
        assert ssp.trials < 3 * expected_ssp_trials()
        # Detections come from the telemetry smash counter, not exit
        # statuses: a successful SSP attack confirms all 8 canary bytes
        # (those probes survive), every other trial aborts the worker.
        assert ssp.smashes_detected == ssp.trials - 8
        # Against P-SSP the attack makes at most a sliver of false
        # progress, so nearly every trial is a detected smash.
        assert pssp.trials - 3 <= pssp.smashes_detected <= pssp.trials
        assert pssp.smashes_detected > 0
    assert result.compat_false_positives == 0
    # The canary runtime stayed silent across every benign mixed build.
    assert result.compat_smash_detections == 0
    benchmark.extra_info["report"] = result.render()
