"""Ablation: the rewriter's 64→2×32-bit canary downgrade (§V-C caveat).

The paper accepts halved entropy to preserve stack layout, arguing the
per-fork refresh keeps the attacker at a fresh 32-bit challenge — "still
64 times more [trials] than the byte-by-byte attack on SSP".  We measure
one-shot survival probabilities at scaled widths and check that exact
factor structure.
"""

from repro.attacks.byte_by_byte import expected_ssp_trials
from repro.attacks.exhaustive import survival_probability_montecarlo


def test_canary_width_ablation(benchmark, run_once):
    def measure():
        return {
            "ssp": survival_probability_montecarlo("ssp", bits=16, samples=200_000),
            "pssp": survival_probability_montecarlo("pssp", bits=16, samples=200_000),
            "pssp-binary": survival_probability_montecarlo(
                "pssp-binary", bits=16, samples=200_000
            ),
        }

    rates = run_once(measure)
    print("\n=== Ablation: canary width (survival probability, 16-bit scale) ===")
    for scheme, rate in rates.items():
        print(f"  {scheme:12s} {rate:.6f}")

    # Full-width P-SSP == SSP strength.
    assert abs(rates["pssp"] - rates["ssp"]) < 3e-4
    # Folded halves: survival probability ~ sqrt of the full-width one.
    assert rates["pssp-binary"] > 10 * rates["ssp"]
    assert abs(rates["pssp-binary"] - 2**-8) < 2e-3

    # The paper's 32-bit arithmetic: expected exhaustive trials on the
    # downgraded canary (2^31) still dwarf byte-by-byte on SSP (~1024).
    downgraded_expected = 2.0**31
    assert downgraded_expected > 64 * expected_ssp_trials()
    benchmark.extra_info["rates"] = {k: f"{v:.6f}" for k, v in rates.items()}
