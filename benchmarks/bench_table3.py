"""Regenerate Table III: web-server mean response times (ms/request).

Paper reference (ms): Apache2 33.006 / 33.008 / 33.099;
Nginx 3.088 / 3.090 / 3.088 (native / compiler P-SSP / instrumented).
"""

from repro.harness.tables import table3


def test_table3(benchmark, run_once):
    result = run_once(lambda: table3(requests=40))
    print("\n=== Table III (measured) ===")
    print(result.render())

    apache = result.results["apache2"]
    nginx = result.results["nginx"]
    # Absolute anchors near the paper's measurements.
    assert 32.5 < apache["ssp"].mean_response_ms < 33.5
    assert 3.0 < nginx["ssp"].mean_response_ms < 3.2
    # P-SSP deltas live in the third decimal, as in the paper.
    for server in (apache, nginx):
        native = server["ssp"].mean_response_ms
        assert abs(server["pssp"].mean_response_ms - native) < 0.05
        assert abs(server["pssp-binary"].mean_response_ms - native) < 0.12
        # Instrumented costs at least as much CPU as compiled.
        assert (
            server["pssp-binary"].cpu_cycles_per_request
            >= server["pssp"].cpu_cycles_per_request
        )
    benchmark.extra_info["table"] = result.render()
