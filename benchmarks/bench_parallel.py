#!/usr/bin/env python
"""Parallel campaign scaling and build-cache effectiveness benchmark.

Three claims from the parallel execution plane are measured and gated:

* **Determinism** — a fuzz campaign run with ``--jobs N`` must produce a
  report bit-identical to the serial run.  A divergence is a correctness
  bug (exit 2), not a perf problem, and is never waived.
* **Scaling** — on a multi-core host the sharded campaign must actually
  go faster.  The speedup gate (default 2.5x at 4 workers) only arms
  when the host has at least ``--jobs`` cores; on smaller machines the
  measured speedup is recorded but informational, since a 1-core
  container cannot demonstrate parallelism it does not have.
* **Cache effectiveness** — shrinking a planted-mutant failure re-checks
  candidate programs across schemes and paths, which re-builds the same
  sources repeatedly; the content-addressed build cache must convert at
  least ``--min-hit-rate`` (default 50%) of those compiles into hits.

Usage::

    python benchmarks/bench_parallel.py                  # full run
    python benchmarks/bench_parallel.py --smoke          # CI-sized run
    python benchmarks/bench_parallel.py --json OUT.json  # write results

The committed ``benchmarks/BENCH_parallel.json`` records a reference
run (including the core count it was measured on); CI regenerates the
measurement on every push.

Exit status: 0 on success, 1 if a perf/cache gate fails, 2 if the
parallel report diverges from the serial one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fuzz.fuzzer import run_fuzz  # noqa: E402
from repro.fuzz.mutants import MUTANTS, planted  # noqa: E402
from repro.parallel import build_cache, reset_build_cache  # noqa: E402

#: Campaign sizes: the full run matches the acceptance criterion
#: (200 programs); smoke keeps the per-push CI job in seconds.
FULL_BUDGET = 200
SMOKE_BUDGET = 24

DEFAULT_JOBS = 4
DEFAULT_MIN_SPEEDUP = 2.5
DEFAULT_MIN_HIT_RATE = 0.5


def measure_scaling(budget: int, jobs: int) -> dict:
    """Time the same campaign serially and sharded; check bit-identity."""
    reset_build_cache()
    start = time.perf_counter()
    serial = run_fuzz(budget, base_seed=2018, shrink=False, health=False)
    serial_seconds = time.perf_counter() - start

    reset_build_cache()
    start = time.perf_counter()
    pooled = run_fuzz(
        budget, base_seed=2018, shrink=False, health=False, jobs=jobs
    )
    parallel_seconds = time.perf_counter() - start

    identical = (
        json.dumps(serial.to_json(), sort_keys=True)
        == json.dumps(pooled.to_json(), sort_keys=True)
    )
    return {
        "budget": budget,
        "jobs": jobs,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds else 0.0,
        "identical": identical,
    }


def measure_cache_hit_rate() -> dict:
    """Shrink a planted-mutant failure and report the build-cache stats.

    ``planted`` clears the cache on entry (a live-code mutant is a
    toolchain change the content address cannot see), so every hit
    counted here comes from re-compiles within the failing campaign:
    the fast/slow double-build of each program and the shrinker
    re-checking candidate reductions across schemes.
    """
    with planted(MUTANTS[0]):
        report = run_fuzz(3, base_seed=2018, shrink=True, health=False)
        stats = build_cache().stats()
    lookups = stats["hits"] + stats["misses"]
    return {
        "mutant": MUTANTS[0].name,
        "failures_found": len(report.failures),
        "shrunk": sum(1 for f in report.failures if f.shrunk_spec is not None),
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": stats["hits"] / lookups if lookups else 0.0,
    }


def run_benchmark(budget: int, jobs: int) -> dict:
    return {
        "mode": "smoke" if budget < FULL_BUDGET else "full",
        "cores": os.cpu_count() or 1,
        "scaling": measure_scaling(budget, jobs),
        "cache": measure_cache_hit_rate(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI-sized campaign ({SMOKE_BUDGET} programs vs {FULL_BUDGET})",
    )
    parser.add_argument(
        "--budget", type=int, default=None,
        help="override the campaign budget (number of fuzzed programs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=DEFAULT_JOBS,
        help=f"worker count for the sharded run (default: {DEFAULT_JOBS})",
    )
    parser.add_argument(
        "--json", metavar="OUT", help="write the results report to OUT"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
        help="required serial/parallel ratio when the host has >= --jobs "
             f"cores (default: {DEFAULT_MIN_SPEEDUP})",
    )
    parser.add_argument(
        "--min-hit-rate", type=float, default=DEFAULT_MIN_HIT_RATE,
        help="required build-cache hit rate on the shrink scenario "
             f"(default: {DEFAULT_MIN_HIT_RATE})",
    )
    args = parser.parse_args(argv)

    budget = args.budget if args.budget is not None else (
        SMOKE_BUDGET if args.smoke else FULL_BUDGET
    )
    report = run_benchmark(budget, args.jobs)
    scaling, cache = report["scaling"], report["cache"]

    print(f"parallel campaign benchmark ({report['mode']}, "
          f"{report['cores']} cores)")
    print(
        f"  fuzz {scaling['budget']} programs: "
        f"serial {scaling['serial_seconds']:.2f}s, "
        f"jobs={scaling['jobs']} {scaling['parallel_seconds']:.2f}s, "
        f"speedup {scaling['speedup']:.2f}x, "
        f"identical={scaling['identical']}"
    )
    print(
        f"  shrink of planted mutant '{cache['mutant']}': "
        f"{cache['hits']} hits / {cache['misses']} misses, "
        f"hit rate {cache['hit_rate']:.0%} "
        f"({cache['failures_found']} failure(s), {cache['shrunk']} shrunk)"
    )

    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")

    if not scaling["identical"]:
        print(
            "PARALLEL/SERIAL DIVERGENCE (correctness bug): the jobs="
            f"{scaling['jobs']} report does not match the serial report",
            file=sys.stderr,
        )
        return 2

    failed = False
    if cache["hit_rate"] < args.min_hit_rate:
        print(
            f"BUILD CACHE REGRESSION: hit rate {cache['hit_rate']:.0%} "
            f"below {args.min_hit_rate:.0%}",
            file=sys.stderr,
        )
        failed = True
    if report["cores"] >= args.jobs:
        if scaling["speedup"] < args.min_speedup:
            print(
                f"SCALING REGRESSION: {scaling['speedup']:.2f}x below "
                f"{args.min_speedup:.2f}x with {report['cores']} cores",
                file=sys.stderr,
            )
            failed = True
    else:
        print(
            f"  (speedup gate skipped: {report['cores']} cores < "
            f"{args.jobs} workers)"
        )
    if failed:
        return 1
    print("parallel campaign gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
