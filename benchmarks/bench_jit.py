#!/usr/bin/env python
"""Trace-JIT tier benchmark: superblock dispatch vs. plain fast path.

Measures simulated instructions/second on the interpreter benchmark
workloads (ALU loop, call-dense recursion, canary-heavy P-SSP-OWF) with
the trace-JIT tier enabled and disabled on the *same* fast interpreter,
verifies both against the slow per-step oracle bit-for-bit (full
architectural snapshot: registers, flags, memory image, accounting), and
reports the jit/nojit speedup per workload.

Like ``bench_interpreter.py``, CI gating is done on the **speedup
ratio**, not absolute instrs/sec: the ratio between two configurations
of the same interpreter measured in the same process is stable across
runner hardware.  A trace-formation regression (blocks rejected that
used to compile, a side-exit that stops chaining) shows up as a ratio
drop long before anyone reads a profile.

Usage::

    python benchmarks/bench_jit.py                  # full run
    python benchmarks/bench_jit.py --smoke          # CI-sized run
    python benchmarks/bench_jit.py --json OUT.json  # write results
    python benchmarks/bench_jit.py \
        --compare benchmarks/BENCH_jit.json         # gate

Exit status: 0 on success, 1 on a gated regression, 2 if any path
diverges from the slow oracle (a correctness bug, not a perf problem).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_interpreter import WORKLOADS, _geomean  # noqa: E402

from repro.core.deploy import build, deploy  # noqa: E402
from repro.kernel.kernel import Kernel  # noqa: E402
from repro.machine.debug import (  # noqa: E402
    architectural_snapshot,
    snapshot_divergences,
)

#: Tolerated relative drop in a workload's jit/nojit speedup before the
#: --compare gate fails the run.
DEFAULT_THRESHOLD = 0.20

#: Workloads whose geomean speedup the --compare gate additionally
#: floors (the tentpole acceptance target: hot straight-line and
#: call-dense code is where superblocks earn their keep; canary-heavy
#: code side-exits at every protected prologue and is gated only by its
#: own per-workload floor).
GEOMEAN_WORKLOADS = ("alu_loop", "call_dense")


def run_config(source, scheme, *, fast, jit, repeats):
    """Run ``source`` on one interpreter configuration; measure it."""
    kernel = Kernel(seed=42)
    binary = build(source, scheme, name="bench")
    process, _ = deploy(
        kernel, binary, scheme, cycle_limit=4_000_000_000, fast=fast
    )
    process.cpu.jit = jit
    # Warm-up call: decode + trace formation happen here.
    warm = process.run()
    if warm.crashed:
        raise SystemExit(f"workload crashed under {scheme}: {warm.signal}")
    instructions = 0
    start = time.perf_counter()
    for _ in range(repeats):
        result = process.call("main")
        instructions += result.instructions
    elapsed = time.perf_counter() - start
    return {
        "instructions_per_second": instructions / elapsed if elapsed else 0.0,
        "snapshot": architectural_snapshot(process),
    }


def run_benchmark(smoke: bool, repeats: int) -> dict:
    results = {}
    divergences = []
    for name, scheme, template, full_iter, smoke_iter in WORKLOADS:
        iterations = smoke_iter if smoke else full_iter
        source = template.replace("%ITER%", str(iterations))
        # The oracle must perform the *same* call sequence (warm-up plus
        # timed repeats) or the accounting in the snapshot cannot match.
        slow = run_config(source, scheme, fast=False, jit=False,
                          repeats=repeats)
        nojit = run_config(source, scheme, fast=True, jit=False,
                           repeats=repeats)
        jit = run_config(source, scheme, fast=True, jit=True,
                         repeats=repeats)
        for label, other in (("nojit", nojit), ("jit", jit)):
            for diff in snapshot_divergences(slow["snapshot"],
                                             other["snapshot"]):
                divergences.append(f"{name}/{label}: {diff}")
        speedup = (
            jit["instructions_per_second"] / nojit["instructions_per_second"]
            if nojit["instructions_per_second"]
            else 0.0
        )
        results[name] = {
            "scheme": scheme,
            "iterations": iterations,
            "jit_instructions_per_second": jit["instructions_per_second"],
            "nojit_instructions_per_second": nojit["instructions_per_second"],
            "speedup": speedup,
        }
    gated = [results[n]["speedup"] for n in GEOMEAN_WORKLOADS]
    return {
        "mode": "smoke" if smoke else "full",
        "repeats": repeats,
        "workloads": results,
        "divergences": divergences,
        "summary": {
            "min_speedup": min(w["speedup"] for w in results.values()),
            "geomean_speedup": _geomean(
                [w["speedup"] for w in results.values()]
            ),
            "gated_geomean_speedup": _geomean(gated),
        },
    }


def gate(report: dict, baseline_path: Path, threshold: float) -> list:
    """Compare speedups against the committed baseline floors."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, current in report["workloads"].items():
        reference = baseline.get("workloads", {}).get(name)
        if reference is None:
            continue
        floor = reference["speedup"] * (1.0 - threshold)
        if current["speedup"] < floor:
            failures.append(
                f"{name}: speedup {current['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {reference['speedup']:.2f}x "
                f"- {threshold:.0%} tolerance)"
            )
    # The acceptance floor is absolute, not baseline-relative: the JIT
    # tier must stay >=2x on hot ALU/call code or it is not paying for
    # its complexity.
    floor = baseline.get("summary", {}).get("gated_geomean_floor")
    if floor is not None:
        measured = report["summary"]["gated_geomean_speedup"]
        if measured < floor:
            failures.append(
                f"gated geomean ({'/'.join(GEOMEAN_WORKLOADS)}): "
                f"{measured:.2f}x fell below the absolute floor "
                f"{floor:.2f}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workloads (~seconds instead of ~a minute)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed calls per workload per config (default: 3)",
    )
    parser.add_argument(
        "--json", metavar="OUT", help="write the results report to OUT"
    )
    parser.add_argument(
        "--compare", metavar="BASELINE",
        help="gate against a baseline report; non-zero exit on regression",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="tolerated relative speedup drop for --compare (default: 0.20)",
    )
    args = parser.parse_args(argv)
    if args.compare and not Path(args.compare).is_file():
        parser.error(f"baseline not found: {args.compare}")

    report = run_benchmark(args.smoke, args.repeats)

    print(f"trace-JIT benchmark ({report['mode']}, repeats={args.repeats})")
    header = (
        f"{'workload':>14s} {'scheme':>10s} {'jit i/s':>12s} "
        f"{'nojit i/s':>12s} {'speedup':>8s}"
    )
    print(header)
    for name, row in report["workloads"].items():
        print(
            f"{name:>14s} {row['scheme']:>10s} "
            f"{row['jit_instructions_per_second']:12,.0f} "
            f"{row['nojit_instructions_per_second']:12,.0f} "
            f"{row['speedup']:7.2f}x"
        )
    summary = report["summary"]
    print(
        f"min speedup {summary['min_speedup']:.2f}x, "
        f"geomean {summary['geomean_speedup']:.2f}x, "
        f"gated geomean ({'/'.join(GEOMEAN_WORKLOADS)}) "
        f"{summary['gated_geomean_speedup']:.2f}x"
    )

    if args.json:
        # Snapshots are measurement scaffolding, not report content.
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")

    if report["divergences"]:
        print("JIT/ORACLE DIVERGENCE (correctness bug):", file=sys.stderr)
        for line in report["divergences"][:20]:
            print(f"  {line}", file=sys.stderr)
        return 2

    if args.compare:
        failures = gate(report, Path(args.compare), args.threshold)
        if failures:
            print("PERF REGRESSION:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"perf gate passed (threshold {args.threshold:.0%})")

    return 0


if __name__ == "__main__":
    raise SystemExit(main())
