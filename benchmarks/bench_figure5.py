"""Regenerate Figure 5: per-program runtime overhead on the full suite.

Paper reference: compiler-based P-SSP averages 0.24 % and
instrumentation-based 1.01 % over native across SPEC CPU2006.
"""

from repro.harness.figures import figure5


def test_figure5(benchmark, run_once):
    result = run_once(lambda: figure5())  # full 20-program suite
    print("\n=== Figure 5 (measured) ===")
    print(result.render())

    # Shape: instrumentation > compiler; both far below the heavyweight
    # baselines; compiler average in the sub-percent band.
    assert result.instrumentation_average > result.compiler_average
    assert 0 <= result.compiler_average < 1.0
    assert 0 < result.instrumentation_average < 4.0
    # Per-program spread exists (call-dense programs pay more).
    compiler_costs = [v[0] for v in result.overheads.values()]
    assert max(compiler_costs) > 5 * (min(compiler_costs) + 1e-9)
    benchmark.extra_info["figure"] = result.render()
