"""Fault-plane units: windows, verdicts, ledgers, schedule generation."""

from repro.faults.plane import FaultPlane
from repro.faults.policy import RDRAND_RETRY_LIMIT
from repro.faults.schedule import (
    CHAOS_SCHEMES,
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    generate_fault_schedule,
)
from repro.workloads.generator import generate_fuzz_program


def plane(*events, scheme="pssp"):
    return FaultPlane(FaultSchedule(scheme=scheme, events=list(events)))


class TestFaultEvent:
    def test_window_covers_half_open_attempt_range(self):
        event = FaultEvent("rdrand-fail", at=3, count=2)
        assert not event.covers(2)
        assert event.covers(3)
        assert event.covers(4)
        assert not event.covers(5)

    def test_json_round_trip_preserves_every_field(self):
        event = FaultEvent(
            "tls-flip", at=1, count=4, value=0xDEAD, slot="shadow_c1", bit=17
        )
        assert FaultEvent.from_json(event.to_json()) == event

    def test_json_defaults_survive_a_sparse_payload(self):
        event = FaultEvent.from_json({"kind": "fork-eagain"})
        assert (event.at, event.count, event.value) == (0, 1, 0)


class TestFaultSchedule:
    def test_json_round_trip_is_stable(self):
        schedule = FaultSchedule(
            scheme="pssp-nt-hardened",
            events=[FaultEvent("rdrand-fail", at=8, count=16)],
            expected=("degraded",),
            description="starved",
        )
        clone = FaultSchedule.from_json(schedule.to_json())
        assert clone.to_json() == schedule.to_json()
        assert clone.expected == ("degraded",)


class TestRdrandVerdicts:
    def test_fail_window_fires_on_exact_attempts(self):
        p = plane(FaultEvent("rdrand-fail", at=1, count=2))
        verdicts = [p.rdrand_verdict() for _ in range(4)]
        assert verdicts == [None, ("fail",), ("fail",), None]
        assert p.rdrand_attempts == 4

    def test_stuck_window_supplies_the_scheduled_value(self):
        p = plane(FaultEvent("rdrand-stuck", at=0, count=2, value=0x42))
        assert p.rdrand_verdict() == ("stuck", 0x42)
        assert p.rdrand_verdict() == ("stuck", 0x42)
        assert p.rdrand_verdict() is None
        assert p.delivered_counts() == {"rdrand-stuck": 2}

    def test_exhaustion_event_fires_exactly_at_the_retry_limit(self):
        p = plane()
        for streak in range(1, RDRAND_RETRY_LIMIT + 2):
            p.note_rdrand_failure("rdrand-fail", streak)
        assert [e.kind for e in p.events] == ["rdrand-exhausted"]
        assert p.delivered_counts()["rdrand-fail"] == RDRAND_RETRY_LIMIT + 1

    def test_recovery_below_the_limit_is_an_absorption(self):
        p = plane()
        p.note_rdrand_recovered(RDRAND_RETRY_LIMIT - 1)
        assert [kind for kind, _ in p.absorbed] == ["rdrand-fail"]
        p.note_rdrand_recovered(RDRAND_RETRY_LIMIT)
        assert len(p.absorbed) == 1  # past the budget is not "absorbed"


class TestForkAndTlsVerdicts:
    def test_fork_window_delivers_then_clears(self):
        p = plane(FaultEvent("fork-eagain", at=0, count=2))
        assert [p.fork_verdict() for _ in range(3)] == [True, True, False]
        assert p.delivered_counts() == {"fork-eagain": 2}

    def test_window_past_the_run_delivers_nothing(self):
        p = plane(FaultEvent("fork-eagain", at=10, count=4))
        assert [p.fork_verdict() for _ in range(3)] == [False, False, False]
        assert p.delivered == []

    def test_tls_write_window_tears_the_scheduled_writes(self):
        p = plane(FaultEvent("tls-torn", at=1, count=1))
        assert p.tls_write_verdict() is None
        assert p.tls_write_verdict() == "torn"
        assert p.tls_write_verdict() is None
        assert p.delivered_counts() == {"tls-torn": 1}


class TestRdtscObservation:
    def test_skew_shifts_every_read_and_logs_once(self):
        p = plane(FaultEvent("rdtsc-skew", value=0x100))
        assert p.rdtsc_observe(1) == 0x101
        assert p.rdtsc_observe(2) == 0x102
        assert p.delivered_counts() == {"rdtsc-skew": 1}

    def test_stuck_window_freezes_only_the_covered_reads(self):
        p = plane(FaultEvent("rdtsc-stuck", at=1, count=1, value=0x7))
        assert p.rdtsc_observe(100) == 100
        assert p.rdtsc_observe(200) == 0x7
        assert p.rdtsc_observe(300) == 300


class TestGeneratedSchedules:
    def test_same_seed_derives_the_same_schedule(self):
        for seed in (2018, 2019, 2042):
            spec, _ = generate_fuzz_program(seed)
            first = generate_fault_schedule(seed, spec)
            second = generate_fault_schedule(seed, spec)
            assert first.to_json() == second.to_json()

    def test_schedules_stay_inside_the_published_taxonomy(self):
        for seed in range(2018, 2058):
            spec, _ = generate_fuzz_program(seed)
            schedule = generate_fault_schedule(seed, spec)
            assert schedule.scheme in CHAOS_SCHEMES
            assert schedule.events
            assert schedule.expected
            assert set(schedule.expected) <= {"identical", "detected", "degraded"}
            for event in schedule.events:
                assert event.kind in FAULT_KINDS
                if event.kind == "fork-eagain":
                    assert spec.uses_fork

    def test_seeds_exercise_both_absorption_and_degradation(self):
        expectations = set()
        for seed in range(2018, 2078):
            spec, _ = generate_fuzz_program(seed)
            expectations.update(generate_fault_schedule(seed, spec).expected)
        assert {"identical", "degraded", "detected"} <= expectations
