"""Degradation policy: absorb within budget or fail closed, typed."""

from types import SimpleNamespace

import pytest

from repro.crypto.random import EntropySource
from repro.errors import DegradedError, TransientForkFailure
from repro.faults.plane import FaultPlane
from repro.faults.policy import (
    FORK_RETRY_LIMIT,
    SELFTEST_DRAWS,
    TLS_PUBLISH_ATTEMPTS,
    fork_with_retry,
    publish_shadow_pair,
    rdrand_selftest,
    tls_shadow_write,
)
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.machine.devices import RdRandDevice


def plane(*events):
    return FaultPlane(FaultSchedule(scheme="pssp", events=list(events)))


def tls():
    return SimpleNamespace(canary=0x33, shadow_c0=0x1111, shadow_c1=0x1122)


class TestShadowWrites:
    def test_plain_write_lands_without_a_plane(self):
        block = tls()
        assert tls_shadow_write(block, "shadow_c0", 0xAA)
        assert block.shadow_c0 == 0xAA

    def test_torn_write_leaves_the_old_value_in_place(self):
        block = tls()
        p = plane(FaultEvent("tls-torn", at=0, count=1))
        assert not tls_shadow_write(block, "shadow_c0", 0xAA, p)
        assert block.shadow_c0 == 0x1111
        assert tls_shadow_write(block, "shadow_c0", 0xAA, p)
        assert block.shadow_c0 == 0xAA


class TestPublishShadowPair:
    def test_clean_publish_sets_both_halves(self):
        block = tls()
        publish_shadow_pair(block, 0xA0, 0xA1)
        assert (block.shadow_c0, block.shadow_c1) == (0xA0, 0xA1)

    def test_single_tear_is_repaired_and_recorded_absorbed(self):
        block = tls()
        p = plane(FaultEvent("tls-torn", at=0, count=1))
        publish_shadow_pair(block, 0xA0, 0xA1, plane=p)
        assert (block.shadow_c0, block.shadow_c1) == (0xA0, 0xA1)
        assert [kind for kind, _ in p.absorbed] == ["tls-torn"]
        assert p.events == []

    def test_persistent_tear_fails_closed_with_the_old_pair_intact(self):
        block = tls()
        old = (block.shadow_c0, block.shadow_c1)
        p = plane(FaultEvent("tls-torn", at=0, count=48))
        with pytest.raises(DegradedError) as excinfo:
            publish_shadow_pair(block, 0xA0, 0xA1, plane=p)
        # Fail closed: the previous, internally-consistent pair is still
        # the observable one — never a mixed-generation half-write.
        assert (block.shadow_c0, block.shadow_c1) == old
        assert "fail closed" in excinfo.value.policy
        assert p.event_kinds() == {"shadow-publish-failed"}
        assert p.tls_writes == 2 * TLS_PUBLISH_ATTEMPTS


class _ForkKernel:
    """Minimal kernel stand-in exposing the fork/fault_plane surface."""

    def __init__(self, fault_plane=None):
        self.fault_plane = fault_plane
        self.children = 0

    def fork(self, parent):
        if self.fault_plane is not None and self.fault_plane.fork_verdict():
            raise TransientForkFailure("EAGAIN")
        self.children += 1
        return SimpleNamespace(pid=100 + self.children)


class TestForkWithRetry:
    def test_plain_path_forks_once(self):
        kernel = _ForkKernel()
        parent = SimpleNamespace(kernel=kernel)
        assert fork_with_retry(parent).pid == 101
        assert kernel.children == 1

    def test_transient_eagain_burst_is_absorbed(self):
        p = plane(FaultEvent("fork-eagain", at=0, count=FORK_RETRY_LIMIT - 1))
        parent = SimpleNamespace(kernel=_ForkKernel(p))
        child = fork_with_retry(parent)
        assert child is not None
        assert [kind for kind, _ in p.absorbed] == ["fork-eagain"]
        assert p.events == []

    def test_exhausted_budget_fails_closed_with_an_event(self):
        p = plane(FaultEvent("fork-eagain", at=0, count=FORK_RETRY_LIMIT))
        parent = SimpleNamespace(kernel=_ForkKernel(p))
        with pytest.raises(DegradedError) as excinfo:
            fork_with_retry(parent)
        assert "fail closed" in excinfo.value.policy
        assert p.event_kinds() == {"fork-exhausted"}


def _probe_process(p, seed=3):
    device = RdRandDevice(EntropySource(seed), plane=p)
    return SimpleNamespace(
        cpu=SimpleNamespace(rdrand=device),
        kernel=SimpleNamespace(fault_plane=p),
    )


class TestRdrandSelftest:
    def test_healthy_device_passes_without_quarantine(self):
        p = plane()
        process = _probe_process(p)
        assert rdrand_selftest(process)
        assert not process.cpu.rdrand.quarantined
        assert p.events == []

    def test_device_less_process_trivially_passes(self):
        assert rdrand_selftest(SimpleNamespace(cpu=SimpleNamespace()))

    def test_stuck_drbg_is_quarantined_with_a_typed_event(self):
        p = plane(
            FaultEvent("rdrand-stuck", at=0, count=SELFTEST_DRAWS, value=0x99)
        )
        process = _probe_process(p)
        assert not rdrand_selftest(process)
        assert process.cpu.rdrand.quarantined
        assert p.event_kinds() == {"entropy-degraded"}

    def test_failure_heavy_device_is_quarantined(self):
        p = plane(FaultEvent("rdrand-fail", at=0, count=SELFTEST_DRAWS))
        process = _probe_process(p)
        assert not rdrand_selftest(process)
        assert process.cpu.rdrand.quarantined

    def test_quarantined_reads_fail_but_keep_attempt_alignment(self):
        """Replay alignment: schedule indices advance even while fenced."""
        p = plane(
            FaultEvent("rdrand-stuck", at=0, count=SELFTEST_DRAWS, value=0x99)
        )
        process = _probe_process(p)
        rdrand_selftest(process)
        before = p.rdrand_attempts
        value, ok = process.cpu.rdrand.read()
        assert (value, ok) == (0, False)
        assert p.rdrand_attempts == before + 1
