"""Chaos campaigns: canned cases, replay, checkpointing, the auditor."""

from types import SimpleNamespace

import pytest

from repro.errors import CampaignError
from repro.faults.campaign import (
    CanaryAuditor,
    ChaosReport,
    canned_invariant_cases,
    replay_case,
    run_campaign,
    run_canned_case,
    run_chaos_case,
)
from repro.faults.chaos_mutants import (
    chaos_kill_report,
    chaos_kill_report_ok,
    render_chaos_kill_report,
)
from repro.faults.plane import FaultPlane
from repro.faults.policy import AUDIT_REPEAT_THRESHOLD
from repro.faults.schedule import FaultSchedule

CASES = canned_invariant_cases()


class TestCannedCases:
    @pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
    def test_case_upholds_the_fault_outcome_invariant(self, case):
        run = run_canned_case(case)
        assert run.ok, run.render()
        assert run.outcome in set(case.schedule.expected) | {"identical"}

    def test_starved_rdrand_degrades_with_an_exhaustion_event(self):
        run = run_canned_case(next(c for c in CASES if c.name == "nt-rdrand-starved"))
        assert run.outcome == "degraded"
        assert "rdrand-exhausted" in run.events
        assert run.delivered.get("rdrand-fail", 0) > 0

    def test_stuck_drbg_is_quarantined_before_any_prologue_trusts_it(self):
        run = run_canned_case(next(c for c in CASES if c.name == "nt-entropy-stuck"))
        assert run.outcome == "degraded"
        assert "entropy-degraded" in run.events

    def test_transient_fork_burst_is_absorbed_invisibly(self):
        run = run_canned_case(next(c for c in CASES if c.name == "pssp-fork-eagain"))
        assert run.outcome == "identical"
        assert run.absorbed >= 1
        assert run.delivered.get("fork-eagain", 0) > 0

    def test_persistent_tear_fails_closed_at_install(self):
        run = run_canned_case(next(c for c in CASES if c.name == "pssp-torn-publish"))
        assert run.outcome == "degraded"
        assert "shadow-publish-failed" in run.events


class TestReplayDeterminism:
    @pytest.mark.parametrize("seed", [2018, 2024, 2031])
    def test_same_seed_reproduces_the_run_bit_identically(self, seed):
        assert replay_case(seed).to_json() == replay_case(seed).to_json()

    def test_chaos_run_json_round_trip(self):
        run = run_canned_case(CASES[0])
        clone = type(run).from_json(run.to_json())
        assert clone.to_json() == run.to_json()

    @pytest.mark.parametrize("seed", [2018, 2024])
    def test_replay_is_bit_identical_cow_vs_eager_fork(self, seed, monkeypatch):
        # Chaos clause 6: degradation handling must be invariant to the
        # fork implementation.  The COW page layer and the historical
        # deep copy must replay a case to the same bytes.
        monkeypatch.setenv("REPRO_COW_FORK", "1")
        cow = replay_case(seed).to_json()
        monkeypatch.setenv("REPRO_COW_FORK", "0")
        eager = replay_case(seed).to_json()
        assert cow == eager


class TestCampaign:
    def test_small_campaign_holds_the_invariant(self):
        report = run_campaign(6, base_seed=2018)
        assert report.ok, report.render()
        assert len(report.runs) == 6
        assert set(report.outcome_tally()) <= {"identical", "detected", "degraded"}

    def test_checkpoint_resume_skips_completed_seeds(self, tmp_path):
        checkpoint = str(tmp_path / "chaos.json")
        first = run_campaign(3, base_seed=2018, checkpoint_path=checkpoint)
        assert len(first.runs) == 3
        resumed = run_campaign(
            6, base_seed=2018, checkpoint_path=checkpoint, resume=True
        )
        assert len(resumed.runs) == 6
        seeds = [run.seed for run in resumed.runs]
        assert sorted(seeds) == list(range(2018, 2024))
        assert len(set(seeds)) == 6  # resume re-ran nothing

    def test_deadline_stops_the_campaign_with_a_typed_flag(self):
        report = run_campaign(50, base_seed=2018, deadline=0.0)
        assert report.timed_out
        assert not report.ok
        assert len(report.runs) < 50

    def test_report_json_round_trip(self):
        report = run_campaign(2, base_seed=2018)
        clone = ChaosReport.from_json(report.to_json())
        assert clone.to_json() == report.to_json()
        assert clone.completed_seeds == report.completed_seeds

    def test_broken_scheme_surfaces_as_campaign_error(self):
        with pytest.raises(CampaignError):
            run_chaos_case(
                0,
                spec=CASES[0].spec,
                schedule=FaultSchedule(scheme="no-such-scheme"),
            )


def _auditor(events=()):
    plane = FaultPlane(FaultSchedule(scheme="pssp-nt-hardened"))
    for kind in events:
        plane.record_event(kind)
    return CanaryAuditor(plane)


def _observe_fresh(auditor, value):
    process = SimpleNamespace(
        cpu=SimpleNamespace(registers=SimpleNamespace(read=lambda _name: value))
    )
    instruction = SimpleNamespace(
        op="mov", note="pssp-nt-hardened-c0", operands=[]
    )
    auditor._observe(process, instruction)


def _observe_fallback(auditor, value, shadow_c0):
    process = SimpleNamespace(
        cpu=SimpleNamespace(registers=SimpleNamespace(read=lambda _name: value)),
        tls=SimpleNamespace(shadow_c0=shadow_c0),
    )
    instruction = SimpleNamespace(
        op="mov", note="pssp-nt-fallback-c0", operands=[]
    )
    auditor._observe(process, instruction)


class TestCanaryAuditor:
    def test_zero_canary_store_is_a_finding(self):
        auditor = _auditor()
        _observe_fresh(auditor, 0)
        assert any("zero canary" in f for f in auditor.findings())

    def test_repeated_fresh_value_without_an_event_is_a_finding(self):
        auditor = _auditor()
        for _ in range(AUDIT_REPEAT_THRESHOLD):
            _observe_fresh(auditor, 0x4242)
        assert any("repeated" in f for f in auditor.findings())

    def test_a_degradation_event_explains_the_repeats(self):
        auditor = _auditor(events=("entropy-degraded",))
        for _ in range(AUDIT_REPEAT_THRESHOLD):
            _observe_fresh(auditor, 0x4242)
        assert auditor.findings() == []

    def test_fallback_without_an_event_is_a_finding(self):
        auditor = _auditor()
        _observe_fallback(auditor, 0x77, shadow_c0=0x77)
        assert any("without a recorded" in f for f in auditor.findings())

    def test_fallback_mismatching_the_shadow_pair_is_a_finding(self):
        auditor = _auditor(events=("rdrand-exhausted",))
        _observe_fallback(auditor, 0x77, shadow_c0=0x88)
        assert any("!= TLS shadow C0" in f for f in auditor.findings())

    def test_require_store_flags_a_silent_case(self):
        auditor = _auditor()
        assert any(
            "no canary store" in f
            for f in auditor.findings(require_store=True)
        )
        assert auditor.findings() == []


class TestChaosMutationKill:
    def test_disabling_a_degradation_mechanism_is_caught(self):
        report = chaos_kill_report()
        assert chaos_kill_report_ok(report), render_chaos_kill_report(report)


@pytest.mark.fuzz
@pytest.mark.slow
class TestAcceptanceCampaign:
    """ISSUE acceptance: 200 seeded schedules, zero silent weak canaries."""

    def test_fault_outcome_invariant_over_200_programs(self):
        report = run_campaign(200, base_seed=2018)
        assert len(report.runs) == 200
        assert not report.infra_errors, report.render()
        assert not report.violating_runs, report.render()
        tally = report.outcome_tally()
        assert tally.get("identical", 0) > 0
        assert tally.get("degraded", 0) > 0
