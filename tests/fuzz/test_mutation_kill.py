"""Mutation-kill self-check: the oracle must catch planted bugs.

Each mutant injects one historically-plausible defect (wrong canary
slot, skipped epilogue check, wrong XOR half, neutered failure stub,
fork that forgets to re-randomize, drifting decode-cache costs) into a
different layer of the tree.  A small seeded campaign must flag every
one — and must stay green on the unmutated tree — or the differential
oracle has silently rotted.
"""

import pytest

from repro.compiler.passes.pssp import PSSPPass
from repro.fuzz.mutants import (
    MUTANTS,
    kill_mutant,
    kill_report_ok,
    mutation_kill_report,
    planted,
    render_kill_report,
)

KILL_BUDGET = 2
BASE_SEED = 2018


class TestMutantInventory:
    def test_at_least_six_mutants_spanning_all_layers(self):
        assert len(MUTANTS) >= 6
        assert {mutant.layer for mutant in MUTANTS} == {
            "pass", "rewriter", "runtime",
        }

    def test_mutants_are_reversible(self):
        original = PSSPPass.emit_prologue
        by_name = {mutant.name: mutant for mutant in MUTANTS}
        with planted(by_name["pass-prologue-slot-off-by-one"]):
            assert PSSPPass.emit_prologue is not original
        assert PSSPPass.emit_prologue is original

    def test_undo_runs_even_when_the_body_raises(self):
        original = PSSPPass.emit_epilogue_check
        by_name = {mutant.name: mutant for mutant in MUTANTS}
        with pytest.raises(RuntimeError):
            with planted(by_name["pass-epilogue-check-skipped"]):
                raise RuntimeError("boom")
        assert PSSPPass.emit_epilogue_check is original


class TestMutationKill:
    @pytest.mark.parametrize(
        "mutant", MUTANTS, ids=lambda mutant: mutant.name
    )
    def test_oracle_kills_mutant(self, mutant):
        verdict = kill_mutant(
            mutant, budget=KILL_BUDGET, base_seed=BASE_SEED
        )
        assert verdict.killed, (
            f"{mutant.name} ({mutant.layer}) survived: "
            f"expected {mutant.expected_signal}"
        )

    def test_baseline_stays_clean(self):
        # The flip side of killing mutants: no false positives without one.
        from repro.fuzz import run_fuzz

        report = run_fuzz(
            KILL_BUDGET, base_seed=BASE_SEED, shrink=False, health=True
        )
        assert report.ok, report.render()


@pytest.mark.fuzz
@pytest.mark.slow
class TestFullKillReport:
    def test_report_renders_and_passes(self):
        verdicts = mutation_kill_report(budget=3, base_seed=BASE_SEED)
        text = render_kill_report(verdicts)
        assert kill_report_ok(verdicts), text
        assert "MUTATION KILL OK" in text
        assert "baseline" in verdicts
