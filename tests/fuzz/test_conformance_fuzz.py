"""The differential conformance fuzzer: unit behaviour + campaigns.

The quick suite runs the cheap pieces (gating rules, shrinking, report
plumbing, determinism, a small smoke campaign).  The ``fuzz``-marked
campaign at the bottom is the acceptance run: ≥200 seeded programs
across every scheme and both interpreter paths, executed by the
scheduled CI job (and by ``pytest -m fuzz`` locally).
"""

import json

import pytest

from repro.fuzz import (
    DEFAULT_FUZZ_SCHEMES,
    applicable_schemes,
    check_source,
    run_fuzz,
    shrink_spec,
)
from repro.fuzz.conformance import (
    UNWIND_FRAGILE,
    rewriter_layout_failures,
    scheme_health_failures,
)
from repro.fuzz.fuzzer import replay_seed, write_failure_artifacts
from repro.workloads.generator import (
    ProgramSpec,
    generate_fuzz_program,
    render_program,
)


class TestSchemeGating:
    def test_plain_program_runs_every_scheme(self):
        selected, skipped = applicable_schemes(
            DEFAULT_FUZZ_SCHEMES, uses_fork=False, uses_setjmp=False
        )
        assert list(selected) == list(DEFAULT_FUZZ_SCHEMES)
        assert skipped == {}

    def test_fork_gates_raf_ssp_only(self):
        selected, skipped = applicable_schemes(
            DEFAULT_FUZZ_SCHEMES, uses_fork=True, uses_setjmp=False
        )
        assert set(skipped) == {"raf-ssp"}
        assert "pssp" in selected and "dynaguard" in selected

    def test_setjmp_gates_unwind_fragile_schemes(self):
        _, skipped = applicable_schemes(
            DEFAULT_FUZZ_SCHEMES, uses_fork=False, uses_setjmp=True
        )
        assert set(skipped) == UNWIND_FRAGILE

    def test_setjmp_plus_fork_also_gates_dynaguard(self):
        _, skipped = applicable_schemes(
            DEFAULT_FUZZ_SCHEMES, uses_fork=True, uses_setjmp=True
        )
        assert set(skipped) == UNWIND_FRAGILE | {"raf-ssp", "dynaguard"}


class TestDeterminism:
    def test_same_seed_same_program(self):
        spec_a, source_a = generate_fuzz_program(4321)
        spec_b, source_b = generate_fuzz_program(4321)
        assert spec_a.to_json() == spec_b.to_json()
        assert source_a == source_b

    def test_same_seed_same_verdict(self):
        _, source = generate_fuzz_program(2018)
        first = check_source(source, schemes=("none", "ssp", "pssp"), seed=2018)
        second = check_source(source, schemes=("none", "ssp", "pssp"), seed=2018)
        assert [str(f) for f in first] == [str(f) for f in second] == []

    def test_replay_matches_campaign_generation(self):
        spec, source, failures = replay_seed(
            2018, schemes=("none", "pssp", "pssp-binary")
        )
        assert source == generate_fuzz_program(2018)[1]
        assert failures == []


class TestContractClauses:
    def test_health_probes_pass_on_clean_tree(self):
        assert scheme_health_failures(("ssp", "pssp", "pssp-binary")) == []

    def test_rewriter_layout_clean_on_both_paths(self):
        _, source = generate_fuzz_program(2025)
        for scheme in ("pssp-binary", "pssp-binary-static"):
            assert rewriter_layout_failures(source, scheme) == []

    def test_non_rewriting_scheme_has_no_layout_clause(self):
        assert rewriter_layout_failures("int main() { return 0; }", "pssp") == []

    def test_native_crash_short_circuits(self):
        # Division by zero faults natively: the contract blames the
        # program, not the schemes, and produces exactly one failure.
        failures = check_source(
            "int main() { int x; x = 0; return 1 / x; }", seed=1
        )
        assert [f.kind for f in failures] == ["native-crash"]


class TestShrinking:
    def _bulky_spec(self):
        spec, _ = generate_fuzz_program(2018)
        return spec

    def test_shrink_reaches_fixed_point_under_always_fails(self):
        spec = self._bulky_spec()
        shrunk = shrink_spec(spec, lambda candidate: True)
        # Everything optional is gone; the residue still renders/compiles.
        assert not shrunk.use_fork and not shrunk.use_setjmp
        assert shrunk.recursion_depth == 0
        assert len(shrunk.functions) <= 1
        assert "int main()" in render_program(shrunk)

    def test_shrink_preserves_the_failing_feature(self):
        spec = self._bulky_spec()
        spec.use_fork = True
        shrunk = shrink_spec(spec, lambda candidate: candidate.use_fork)
        assert shrunk.use_fork
        assert len(shrunk.functions) <= 1

    def test_shrink_never_produces_a_broken_reference(self):
        spec = self._bulky_spec()
        seen = []

        def predicate(candidate):
            seen.append(candidate)
            return False  # force the shrinker to try every candidate once

        shrink_spec(spec, predicate)
        for candidate in seen:
            names = {f.name for f in candidate.functions}
            for function in candidate.functions:
                assert set(function.calls) <= names
            source = render_program(candidate)
            assert "int main()" in source


class TestCampaignPlumbing:
    def test_smoke_campaign_is_clean(self):
        report = run_fuzz(4, base_seed=2018, shrink=False, health=False)
        assert report.ok
        assert report.programs_checked == 4
        assert report.runs > 0
        assert "CONFORMANCE OK" in report.render()

    def test_failure_artifacts_round_trip(self, tmp_path, monkeypatch):
        # Plant a cheap mutant so the campaign actually fails, then check
        # the artifact contains everything needed for replay.
        from repro.fuzz.mutants import MUTANTS, planted

        by_name = {mutant.name: mutant for mutant in MUTANTS}
        with planted(by_name["runtime-wrong-xor-half"]):
            report = run_fuzz(
                2, base_seed=2018, schemes=("none", "pssp"),
                shrink=True, health=False, max_shrink_checks=10,
            )
        assert not report.ok
        paths = write_failure_artifacts(report, str(tmp_path))
        assert paths
        artifact = json.loads(open(paths[0]).read())
        assert artifact["replay"].startswith("python -m repro fuzz --replay")
        assert artifact["failures"]
        restored = ProgramSpec.from_json(artifact["spec"])
        assert render_program(restored) == artifact["source"]


@pytest.mark.fuzz
@pytest.mark.slow
class TestAcceptanceCampaign:
    """ISSUE 2 acceptance: ≥200 programs, all schemes, both paths."""

    def test_200_program_campaign_is_clean(self):
        report = run_fuzz(200, base_seed=2018, shrink=True, health=True)
        assert report.ok, report.render()
        assert report.programs_checked == 200
        # Both interpreter paths ran for every selected scheme.
        assert report.runs >= 200 * 2 * 8
