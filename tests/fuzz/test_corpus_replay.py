"""Replay the curated regression corpus through the full contract.

Every entry under ``tests/corpus/`` is a program that once exposed a bug
(or pins a feature combination worth guarding).  Plain entries run the
complete conformance contract — every applicable scheme, both
interpreter paths, rewriter layout checks.  Entries carrying a
``"faults"`` schedule replay through the chaos campaign instead: the
fault-outcome invariant must hold, with the canary auditor attached.

To add a conformance entry: shrink a failing seed (``python -m repro
fuzz --replay SEED`` reports it; campaigns shrink automatically), then
store ``{"description", "seed", "spec": spec.to_json()}`` as JSON here.
For a fault reproducer, add ``"faults": schedule.to_json()`` (and
``"require_store": true`` when the program is known to execute protected
prologues).
"""

import json
from pathlib import Path

import pytest

from repro.faults.campaign import run_chaos_case
from repro.faults.schedule import FaultSchedule
from repro.fuzz import check_spec
from repro.workloads.generator import ProgramSpec, render_program

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def load(path: Path):
    data = json.loads(path.read_text())
    return data, ProgramSpec.from_json(data["spec"])


def fault_entries():
    return [p for p in ENTRIES if "faults" in json.loads(p.read_text())]


class TestCorpusHygiene:
    def test_corpus_is_not_empty(self):
        assert ENTRIES, f"no corpus entries in {CORPUS_DIR}"

    @pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
    def test_entry_is_well_formed(self, path):
        data, spec = load(path)
        assert data["description"]
        assert isinstance(data["seed"], int)
        # The spec renders to a compilable program and survives the JSON
        # round-trip unchanged (what the shrinker and artifacts rely on).
        source = render_program(spec)
        assert "int main()" in source
        assert ProgramSpec.from_json(spec.to_json()).to_json() == spec.to_json()
        if "faults" in data:
            schedule = FaultSchedule.from_json(data["faults"])
            assert schedule.scheme
            assert schedule.events
            assert FaultSchedule.from_json(schedule.to_json()).to_json() \
                == schedule.to_json()

    def test_corpus_covers_the_fragile_features(self):
        specs = [load(path)[1] for path in ENTRIES]
        assert any(spec.uses_fork for spec in specs)
        assert any(spec.uses_setjmp for spec in specs)
        assert any(spec.uses_fork and spec.uses_setjmp for spec in specs)
        assert any(spec.recursion_depth for spec in specs)

    def test_corpus_covers_the_fault_surfaces(self):
        kinds = set()
        for path in fault_entries():
            data = json.loads(path.read_text())
            for event in FaultSchedule.from_json(data["faults"]).events:
                kinds.add(event.kind)
        assert {"rdrand-fail", "fork-eagain", "tls-torn"} <= kinds


class TestCorpusConformance:
    @pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
    def test_entry_passes_full_contract(self, path):
        data, spec = load(path)
        if "faults" in data:
            run = run_chaos_case(
                data["seed"],
                spec=spec,
                schedule=FaultSchedule.from_json(data["faults"]),
                require_store=bool(data.get("require_store", False)),
                case=path.stem,
            )
            assert run.ok, run.render()
        else:
            failures = check_spec(spec, seed=data["seed"])
            assert not failures, [str(f) for f in failures]
