"""Kernel stress: fork storms, reaping, repeated server cycles."""

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

VICTIM = """
int handler(int n) {
    char buf[32];
    read(0, buf, 4096);
    return n & 127;
}
int main() { return 0; }
"""


class TestForkStorm:
    def test_two_hundred_workers_with_reaping(self):
        kernel = Kernel(99)
        binary = build(VICTIM, "pssp", name="srv")
        parent, _ = deploy(kernel, binary, "pssp")
        population_before = len(kernel.processes)
        for index in range(200):
            child = kernel.fork(parent)
            child.feed_stdin(b"x" * (index % 16))
            result = child.call("handler", (index,))
            assert result.state == "exited"
            kernel.reap(child)
        assert len(kernel.processes) == population_before
        assert kernel.fork_count == 200

    def test_shadow_pairs_unique_across_the_storm(self):
        kernel = Kernel(100)
        binary = build(VICTIM, "pssp", name="srv")
        parent, _ = deploy(kernel, binary, "pssp")
        pairs = set()
        for _ in range(100):
            child = kernel.fork(parent)
            pairs.add((child.tls.shadow_c0, child.tls.shadow_c1))
            kernel.reap(child)
        assert len(pairs) == 100  # re-randomization never repeats

    def test_mixed_crash_and_success_workers(self):
        kernel = Kernel(101)
        binary = build(VICTIM, "ssp", name="srv")
        parent, _ = deploy(kernel, binary, "ssp")
        crashed = 0
        for index in range(60):
            child = kernel.fork(parent)
            payload = b"x" * (200 if index % 3 == 0 else 8)
            child.feed_stdin(payload)
            result = child.call("handler", (len(payload),))
            crashed += int(result.crashed)
            kernel.reap(child)
        assert crashed == 20
        # The parent's state is pristine throughout.
        assert parent.tls.canary != 0

    def test_grandchildren(self):
        kernel = Kernel(102)
        binary = build(VICTIM, "pssp", name="srv")
        parent, _ = deploy(kernel, binary, "pssp")
        child = kernel.fork(parent)
        grandchild = kernel.fork(child)
        assert grandchild.ppid == child.pid
        assert grandchild.tls.canary == parent.tls.canary
        # Three distinct shadow pairs across the generations.
        pairs = {
            (p.tls.shadow_c0, p.tls.shadow_c1)
            for p in (parent, child, grandchild)
        }
        assert len(pairs) == 3


class TestDeepExpressions:
    def test_spill_depth(self):
        # A right-leaning tree forces the evaluation stack deep.
        expr = "1"
        for i in range(2, 30):
            expr = f"({expr} + {i})"
        source = f"int main() {{ return ({expr}) & 0xff; }}"
        kernel = Kernel(103)
        binary = build(source, "none", name="deep")
        process, _ = deploy(kernel, binary, "none")
        result = process.run()
        assert result.exit_status == sum(range(1, 30)) & 0xFF

    def test_nested_calls_as_arguments(self):
        source = """
int add(int a, int b) { return a + b; }
int main() {
    return add(add(add(1, 2), add(3, 4)), add(add(5, 6), add(7, 8)));
}
"""
        kernel = Kernel(104)
        binary = build(source, "ssp", name="deep")
        process, _ = deploy(kernel, binary, "ssp")
        assert process.run().exit_status == 36
