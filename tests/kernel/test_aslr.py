"""ASLR (§VII-B): randomized layouts composing with canary schemes."""

import pytest

from repro.core.deploy import build, deploy
from repro.errors import InvalidJump
from repro.kernel.kernel import Kernel

VICTIM = """
int win() {
    puts("PWNED");
    exit(66);
    return 0;
}
int handler(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


def spawn(scheme="none", seed=5, aslr=False):
    kernel = Kernel(seed)
    binary = build(VICTIM, scheme, name="v")
    process, _ = deploy(kernel, binary, scheme, aslr=aslr)
    return kernel, binary, process


class TestLayoutRandomization:
    def test_code_addresses_differ_across_spawns(self):
        kernel = Kernel(5)
        binary = build(VICTIM, "none", name="v")
        addresses = set()
        for _ in range(4):
            process, _ = deploy(kernel, binary, "none", aslr=True)
            addresses.add(process.image.address_of("win"))
        assert len(addresses) >= 3

    def test_stack_and_heap_slide(self):
        kernel = Kernel(5)
        binary = build(VICTIM, "none", name="v")
        stacks, heaps = set(), set()
        for _ in range(4):
            process, _ = deploy(kernel, binary, "none", aslr=True)
            stacks.add(process.memory.segment("stack").base)
            heaps.add(process.memory.segment("heap").base)
        assert len(stacks) >= 3 and len(heaps) >= 2

    def test_no_aslr_is_deterministic_layout(self):
        _, _, a = spawn(seed=5)
        _, _, b = spawn(seed=6)
        assert a.image.address_of("win") == b.image.address_of("win")

    def test_programs_run_normally_under_aslr(self):
        for scheme in ("none", "ssp", "pssp", "pssp-owf"):
            _, _, process = spawn(scheme=scheme, aslr=True)
            process.feed_stdin(b"hi")
            assert process.call("handler", (2,)).state == "exited", scheme

    def test_detection_still_works_under_aslr(self):
        _, _, process = spawn(scheme="pssp", aslr=True)
        process.feed_stdin(b"A" * 150)
        assert process.call("handler", (150,)).smashed

    def test_fork_preserves_the_layout(self):
        # ASLR randomizes per-exec; fork clones, it does not re-randomize
        # (which is exactly why BROP works: same layout every worker).
        kernel, _, parent = spawn(scheme="ssp", aslr=True)
        child = kernel.fork(parent)
        assert child.memory.segment("stack").base == parent.memory.segment("stack").base


class TestHijackUnderAslr:
    def _exploit(self, process, gadget_address):
        from repro.attacks.payloads import PayloadBuilder, frame_map

        frame = frame_map(process.binary, "handler")
        builder = PayloadBuilder(frame)
        payload = builder.with_canaries(
            {frame.canary_slots[0]: process.tls.canary},
            new_return=gadget_address,
            new_rbp=process.registers.read("rsp") - 0x200,
        )
        process.stdin.clear()
        process.feed_stdin(payload)
        return process.call("handler", (len(payload),))

    def test_fixed_address_exploit_works_without_aslr(self):
        _, _, process = spawn(scheme="ssp", seed=9)
        gadget = process.image.address_of("win")
        result = self._exploit(process, gadget)
        assert b"PWNED" in process.stdout

    def test_fixed_address_exploit_misses_under_aslr(self):
        """The §VII-B composition: even with the canary known (perfect
        disclosure), a gadget address from another instance misses."""
        # Attacker learned the address from a *different* spawn.
        _, _, reference = spawn(scheme="ssp", seed=9)
        leaked_gadget = reference.image.address_of("win")
        kernel = Kernel(10)
        binary = build(VICTIM, "ssp", name="v")
        process, _ = deploy(kernel, binary, "ssp", aslr=True)
        process.binary = binary
        if process.image.address_of("win") == leaked_gadget:
            pytest.skip("slide happened to be zero")
        result = self._exploit(process, leaked_gadget)
        assert b"PWNED" not in process.stdout
        assert result.crashed
