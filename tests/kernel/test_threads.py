"""Thread creation: shared memory, private stack and TLS."""

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

SIMPLE = """
int main() { return 0; }
"""

THREADED = """
int worker(int arg) {
    char scratch[16];
    scratch[0] = 1;
    return arg * 2;
}
int main() {
    int tid;
    pthread_create(&tid, 0, worker, 21);
    pthread_join(tid, 0);
    return tid;
}
"""


def spawn(source, scheme="ssp", seed=5):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="t")
    process, _ = deploy(kernel, binary, scheme)
    return kernel, process


class TestThreadContexts:
    def test_thread_shares_memory_object(self):
        kernel, process = spawn(SIMPLE)
        thread = kernel.create_thread(process)
        assert thread.memory is process.memory

    def test_thread_has_own_stack_segment(self):
        kernel, process = spawn(SIMPLE)
        thread = kernel.create_thread(process)
        assert process.memory.has_segment("stack_t1")
        assert thread.registers.read("rsp") != process.registers.read("rsp")

    def test_thread_has_own_tls_with_same_canary(self):
        kernel, process = spawn(SIMPLE)
        thread = kernel.create_thread(process)
        assert thread.registers.fs_base != process.registers.fs_base
        assert thread.tls.canary == process.tls.canary

    def test_thread_hooks_run(self):
        kernel, process = spawn(SIMPLE)
        seen = []
        process.thread_hooks.append(lambda t, p: seen.append(t.name))
        kernel.create_thread(process)
        assert len(seen) == 1

    def test_thread_shares_pid(self):
        kernel, process = spawn(SIMPLE)
        thread = kernel.create_thread(process)
        assert thread.pid == process.pid

    def test_threads_get_disjoint_heap_arenas(self):
        kernel, process = spawn(SIMPLE)
        a = kernel.create_thread(process)
        b = kernel.create_thread(process)
        assert a.brk != b.brk


class TestPthreadCreate:
    def test_thread_function_runs(self):
        _, process = spawn(THREADED)
        result = process.run()
        assert result.state == "exited"
        assert result.exit_status == 1  # tid written back through pointer

    def test_thread_under_pssp_gets_fresh_shadow(self):
        kernel, process = spawn(SIMPLE, scheme="pssp")
        thread = kernel.create_thread(process)
        # Both must satisfy C0 ^ C1 == C, with distinct pairs.
        c = process.tls.canary
        assert process.tls.shadow_c0 ^ process.tls.shadow_c1 == c
        assert thread.tls.shadow_c0 ^ thread.tls.shadow_c1 == c
        assert thread.tls.shadow_c0 != process.tls.shadow_c0
