"""Process lifecycle: spawn, run, crash capture, streams."""

import pytest

from repro.core.deploy import build, deploy
from repro.errors import KernelError
from repro.kernel.kernel import Kernel
from repro.libc.builtins import build_natives

SIMPLE = """
int main() {
    return 7;
}
"""

CRASHER = """
int main() {
    int *p;
    p = 0;
    return *p;
}
"""

ECHO = """
int main() {
    char buf[32];
    int n;
    n = read(0, buf, 16);
    buf[n] = 0;
    printf("got:%s", buf);
    return n;
}
"""


def spawn(source, scheme="ssp", seed=5):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="t")
    process, _ = deploy(kernel, binary, scheme)
    return kernel, process


class TestLifecycle:
    def test_exit_status(self):
        _, process = spawn(SIMPLE)
        result = process.run()
        assert result.state == "exited"
        assert result.exit_status == 7

    def test_tls_canary_initialised_at_spawn(self):
        _, process = spawn(SIMPLE)
        assert process.tls.canary != 0
        assert process.tls.canary & 0xFF == 0  # glibc terminator byte

    def test_crash_captured_not_raised(self):
        _, process = spawn(CRASHER)
        result = process.run()
        assert result.crashed
        assert result.signal == "SIGSEGV"
        assert process.state == "crashed"

    def test_crashed_process_cannot_rerun(self):
        _, process = spawn(CRASHER)
        process.run()
        with pytest.raises(KernelError):
            process.run()

    def test_exited_process_can_be_called_again(self):
        _, process = spawn(SIMPLE)
        assert process.run().exit_status == 7
        assert process.run().exit_status == 7

    def test_cycles_and_instructions_counted(self):
        _, process = spawn(SIMPLE)
        result = process.run()
        assert result.cycles > 0
        assert result.instructions > 0

    def test_distinct_pids(self):
        kernel = Kernel(1)
        binary = build(SIMPLE, "ssp", name="t")
        a, _ = deploy(kernel, binary, "ssp")
        b, _ = deploy(kernel, binary, "ssp")
        assert a.pid != b.pid


class TestStreams:
    def test_stdin_to_stdout(self):
        _, process = spawn(ECHO)
        process.feed_stdin(b"hello")
        result = process.run()
        assert result.exit_status == 5
        assert process.stdout_text() == "got:hello"

    def test_stdin_consumed(self):
        _, process = spawn(ECHO)
        process.feed_stdin(b"abcdef")
        process.run()
        assert len(process.stdin) == 0


class TestSeedDeterminism:
    def test_same_seed_same_canary(self):
        _, a = spawn(SIMPLE, seed=42)
        _, b = spawn(SIMPLE, seed=42)
        assert a.tls.canary == b.tls.canary

    def test_different_seed_different_canary(self):
        _, a = spawn(SIMPLE, seed=42)
        _, b = spawn(SIMPLE, seed=43)
        assert a.tls.canary != b.tls.canary
