"""Fork semantics: the substrate both the attack and defence stand on."""

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

SIMPLE = """
int main() { return 0; }
"""

FORKER = """
int main() {
    int pid;
    int x;
    x = 5;
    pid = fork();
    if (pid == 0) {
        return x + 1;
    }
    return x;
}
"""


def spawn(source, scheme="ssp", seed=5):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="t")
    process, _ = deploy(kernel, binary, scheme)
    return kernel, process


class TestHostFork:
    def test_child_inherits_tls_canary(self):
        kernel, parent = spawn(SIMPLE)
        child = kernel.fork(parent)
        assert child.tls.canary == parent.tls.canary

    def test_child_memory_is_independent(self):
        kernel, parent = spawn(SIMPLE)
        child = kernel.fork(parent)
        heap = parent.memory.segment("heap").base
        child.memory.write_word(heap, 999)
        assert parent.memory.read_word(heap) == 0

    def test_child_inherits_stack_contents(self):
        kernel, parent = spawn(SIMPLE)
        stack_base = parent.memory.segment("stack").base
        parent.memory.write_word(stack_base + 64, 0xCAFE)
        child = kernel.fork(parent)
        assert child.memory.read_word(stack_base + 64) == 0xCAFE

    def test_child_gets_new_pid_and_ppid(self):
        kernel, parent = spawn(SIMPLE)
        child = kernel.fork(parent)
        assert child.pid != parent.pid
        assert child.ppid == parent.pid

    def test_registers_cloned(self):
        kernel, parent = spawn(SIMPLE)
        parent.registers.write("r12", 0x1234)
        child = kernel.fork(parent)
        assert child.registers.read("r12") == 0x1234

    def test_fork_hooks_run_on_child_only(self):
        kernel, parent = spawn(SIMPLE)
        seen = []
        parent.fork_hooks.append(lambda c, p: seen.append((c.pid, p.pid)))
        child = kernel.fork(parent)
        assert seen == [(child.pid, parent.pid)]

    def test_fork_count(self):
        kernel, parent = spawn(SIMPLE)
        kernel.fork(parent)
        kernel.fork(parent)
        assert kernel.fork_count == 2

    def test_child_entropy_diverges(self):
        kernel, parent = spawn(SIMPLE)
        a = kernel.fork(parent)
        b = kernel.fork(parent)
        assert a.entropy.word() != b.entropy.word()


class TestSimulatedFork:
    def test_fork_returns_zero_in_child(self):
        _, process = spawn(FORKER)
        result = process.run()
        # Parent path returns 5; the child (run first) returned 6.
        assert result.exit_status == 5
        children = process.child_results
        assert len(children) == 1
        assert children[0][1].exit_status == 6

    def test_child_runs_to_completion_before_parent_resumes(self):
        _, process = spawn(FORKER)
        result = process.run()
        assert all(r.state == "exited" for _, r in process.child_results)
        assert result.state == "exited"

    def test_reap_forgets_child(self):
        kernel, parent = spawn(SIMPLE)
        child = kernel.fork(parent)
        assert child.pid in kernel.processes
        kernel.reap(child)
        assert child.pid not in kernel.processes
