"""Kernel edge cases under fault injection.

Three interleavings the chaos campaign relies on but cannot easily pin
down individually: a fork whose child shadow-pair refresh tears
mid-publish, thread creation after the entropy source was quarantined,
and reaping a process that died to a typed degradation mid-run.
"""

import pytest

from repro.core.deploy import build, deploy
from repro.errors import DegradedError
from repro.faults.plane import FaultPlane
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.kernel.kernel import Kernel

SIMPLE = """
int main() { return 0; }
"""

FORKER = """
int main() {
    int pid;
    pid = fork();
    if (pid == 0) {
        return 7;
    }
    return 0;
}
"""


def spawn(source, scheme, *events, seed=9):
    plane = FaultPlane(FaultSchedule(scheme=scheme, events=list(events)))
    kernel = Kernel(seed, fault_plane=plane)
    binary = build(source, scheme, name="edge")
    process, _ = deploy(kernel, binary, scheme)
    return kernel, process, plane


class TestForkDuringShadowRefresh:
    def test_torn_child_refresh_rolls_the_fork_back_completely(self):
        kernel, parent, plane = spawn(SIMPLE, "pssp")
        # Open the torn window only now, so it hits the *child's* on-fork
        # shadow-pair refresh and not the parent's install-time publish.
        plane.schedule.events.append(
            FaultEvent("tls-torn", at=plane.tls_writes, count=48)
        )
        pids = set(kernel.processes)
        forks = kernel.fork_count
        pair = (parent.tls.shadow_c0, parent.tls.shadow_c1)
        with pytest.raises(DegradedError):
            kernel.fork(parent)
        # All-or-nothing: no half-initialised child stays registered and
        # the fork-cost metric does not count the aborted attempt.
        assert set(kernel.processes) == pids
        assert kernel.fork_count == forks
        assert "shadow-publish-failed" in plane.event_kinds()
        # The parent's pair is untouched and still binds its canary.
        assert (parent.tls.shadow_c0, parent.tls.shadow_c1) == pair
        assert parent.tls.shadow_c0 ^ parent.tls.shadow_c1 == parent.tls.canary

    def test_fork_succeeds_again_once_the_window_closes(self):
        kernel, parent, plane = spawn(SIMPLE, "pssp")
        plane.schedule.events.append(
            FaultEvent("tls-torn", at=plane.tls_writes, count=1)
        )
        child = kernel.fork(parent)
        assert child.pid in kernel.processes
        assert child.tls.shadow_c0 ^ child.tls.shadow_c1 == child.tls.canary

    def test_torn_refresh_under_cow_leaves_parent_pages_untouched(self):
        # The aborted child's shadow writes landed in *its* COW overlay:
        # rolling the fork back must leave the parent's page table — not
        # just its visible bytes — exactly as it was.
        kernel, parent, plane = spawn(SIMPLE, "pssp")
        kernel.fork(parent)  # freeze once so steady-state stats are clean
        before_bytes = {
            segment.name: segment.tobytes()
            for segment in parent.memory.segments()
        }
        before_stats = parent.memory.page_stats()
        plane.schedule.events.append(
            FaultEvent("tls-torn", at=plane.tls_writes, count=48)
        )
        with pytest.raises(DegradedError):
            kernel.fork(parent)
        assert parent.memory.page_stats() == before_stats
        assert {
            segment.name: segment.tobytes()
            for segment in parent.memory.segments()
        } == before_bytes

    def test_torn_refresh_rollback_is_identical_cow_vs_eager(self, monkeypatch):
        outcomes = []
        for knob in ("1", "0"):
            monkeypatch.setenv("REPRO_COW_FORK", knob)
            kernel, parent, plane = spawn(SIMPLE, "pssp")
            plane.schedule.events.append(
                FaultEvent("tls-torn", at=plane.tls_writes, count=48)
            )
            with pytest.raises(DegradedError):
                kernel.fork(parent)
            outcomes.append((
                parent.tls.shadow_c0,
                parent.tls.shadow_c1,
                sorted(kernel.processes),
                kernel.fork_count,
                plane.event_kinds(),
            ))
        assert outcomes[0] == outcomes[1]


class TestThreadAfterEntropyDegradation:
    def test_new_thread_still_gets_a_fresh_canary_bound_pair(self):
        # A DRBG stuck from boot: the hardened runtime's self-test must
        # quarantine rdrand during deploy...
        kernel, process, plane = spawn(
            SIMPLE,
            "pssp-nt-hardened",
            FaultEvent("rdrand-stuck", at=0, count=64, value=0x1D1D_1D1D),
        )
        assert "entropy-degraded" in plane.event_kinds()
        assert process.cpu.rdrand.quarantined
        # ...and thread creation afterwards must still produce a valid,
        # refreshed shadow pair (publish draws process entropy, not rdrand).
        thread = kernel.create_thread(process)
        assert thread.tls.canary == process.tls.canary
        assert thread.tls.shadow_c0 ^ thread.tls.shadow_c1 == thread.tls.canary
        assert thread.tls.shadow_c0 != process.tls.shadow_c0


class TestReapAfterDegradedDeath:
    def test_reaping_a_degraded_process_leaves_the_kernel_consistent(self):
        kernel, process, plane = spawn(
            FORKER, "pssp", FaultEvent("fork-eagain", at=0, count=64)
        )
        result = process.run()
        assert result.state == "crashed"
        assert isinstance(result.crash, DegradedError)
        assert "fork-exhausted" in plane.event_kinds()
        # The EAGAIN-exhausted fork registered no child at all.
        assert set(kernel.processes) == {process.pid}
        kernel.reap(process)
        assert process.pid not in kernel.processes
        kernel.reap(process)  # reap is idempotent
        assert kernel.processes == {}
