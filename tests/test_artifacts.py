"""Checked-in artifact consistency.

EXPERIMENTS.md and DESIGN.md are deliverables; these tests keep them from
silently rotting relative to the code (missing sections, stale scheme
lists, broken doc links).
"""

import pathlib
import re
import subprocess

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestExperimentsDocument:
    def test_exists_and_has_all_sections(self):
        text = read("EXPERIMENTS.md")
        for heading in (
            "## Table I", "## Table II", "## Table III", "## Table IV",
            "## Table V", "## Figure 5", "## Figures 1 & 2",
            "## Figures 3 & 4", "## Figure 6", "## §VI-C",
            "## Measured properties matrix",
        ):
            assert heading in text, heading

    def test_figure5_covers_the_full_suite(self):
        from repro.workloads.spec import SPEC_PROGRAMS

        text = read("EXPERIMENTS.md")
        for program in SPEC_PROGRAMS:
            assert program.name in text, program.name

    def test_quotes_paper_reference_values(self):
        text = read("EXPERIMENTS.md")
        for anchor in ("0.24", "1.01", "156", "33.006", "167.27", "986"):
            assert anchor in text, anchor


class TestDesignDocument:
    def test_every_experiment_indexed(self):
        text = read("DESIGN.md")
        for experiment in ("Table I", "Table II", "Table III", "Table IV",
                           "Table V", "Fig. 5", "Thm 1"):
            assert experiment in text, experiment

    def test_reproduction_findings_present(self):
        text = read("DESIGN.md")
        assert "global-buffer" in text          # unwinding fragility
        assert "single-variable degeneracy" in text.lower() or \
            "LV single-variable degeneracy" in text

    def test_bench_targets_exist(self):
        text = read("DESIGN.md")
        for target in re.findall(r"benchmarks/(bench_\w+\.py)", text):
            assert (ROOT / "benchmarks" / target).exists(), target


class TestRepoHygiene:
    def test_no_bytecode_or_image_noise_is_tracked(self):
        try:
            tracked = subprocess.run(
                ["git", "ls-files"], cwd=ROOT,
                capture_output=True, text=True, check=True,
            ).stdout.splitlines()
        except (OSError, subprocess.CalledProcessError):
            pytest.skip("not running from a git checkout")
        noise = [
            path for path in tracked
            if "__pycache__" in path
            or path.endswith((".pyc", ".pyo", ".pyd", ".simg"))
        ]
        assert noise == []

    def test_gitignore_covers_the_noise_patterns(self):
        text = read(".gitignore")
        for pattern in (
            "__pycache__/", "*.py[cod]", "*.simg",
            ".hypothesis/", ".pytest_cache/",
        ):
            assert pattern in text, pattern


class TestReadme:
    def test_doc_links_resolve(self):
        text = read("README.md")
        for link in re.findall(r"\]\(((?:docs/)?[\w.-]+\.md)\)", text):
            assert (ROOT / link).exists(), link

    def test_example_list_matches_directory(self):
        text = read("README.md")
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in text, f"README does not mention {path.name}"


class TestDocsPages:
    def test_all_pages_present(self):
        for page in ("architecture.md", "schemes.md", "attacks.md",
                     "minic.md", "api.md", "walkthrough.md"):
            assert (ROOT / "docs" / page).exists(), page

    def test_schemes_page_covers_the_registry(self):
        from repro.core.deploy import SCHEMES

        text = read("docs/schemes.md")
        documented_elsewhere = {
            "none", "dynaguard-dbi", "pssp-binary-static",
            # Ablation variants (registered lazily by register_ablation_
            # schemes, possibly earlier in this test session) live in
            # DESIGN.md §4b/§5, not the schemes page.
            "pssp-owf-nononce", "pssp-binary-inline", "pssp-tls-half",
        }
        for scheme in SCHEMES:
            if scheme in documented_elsewhere:
                continue
            assert f"`{scheme}`" in text or scheme in text, scheme
