"""Protection passes: frame plans and emitted instrumentation."""

import pytest

from repro.compiler.parser import parse
from repro.compiler.passes import (
    DCRPass,
    DynaGuardPass,
    GlobalBufferPass,
    NoProtection,
    PSSPLVPass,
    PSSPNTPass,
    PSSPOWFPass,
    PSSPPass,
    SSPPass,
    available_passes,
    get_pass,
)
from repro.compiler.codegen import compile_source
from repro.errors import ProtectionError

BUFFERED = parse("int f(int n) { char buf[64]; buf[0] = n; return buf[0]; }").functions[0]
PLAIN = parse("int g(int n) { int x; x = n; return x; }").functions[0]
TWO_CRITICAL = parse("""
int f() {
    critical char a[8];
    critical char b[8];
    a[0] = 1;
    b[0] = 2;
    return a[0];
}
""").functions[0]


class TestSelection:
    @pytest.mark.parametrize("pass_cls", [SSPPass, PSSPPass, PSSPNTPass,
                                          PSSPOWFPass, DynaGuardPass, DCRPass,
                                          GlobalBufferPass])
    def test_buffered_function_protected(self, pass_cls):
        assert pass_cls().should_protect(BUFFERED)

    @pytest.mark.parametrize("pass_cls", [SSPPass, PSSPPass, PSSPNTPass,
                                          PSSPOWFPass])
    def test_plain_function_skipped(self, pass_cls):
        assert not pass_cls().should_protect(PLAIN)

    def test_no_protection_never_protects(self):
        assert not NoProtection().should_protect(BUFFERED)


class TestFramePlans:
    def test_ssp_single_slot_at_top(self):
        plan = SSPPass().plan_frame(BUFFERED)
        assert plan.canary_slots == [8]

    def test_pssp_two_slots(self):
        plan = PSSPPass().plan_frame(BUFFERED)
        assert plan.canary_slots == [8, 16]

    def test_owf_three_slots_nonce_plus_cipher(self):
        plan = PSSPOWFPass().plan_frame(BUFFERED)
        assert plan.canary_slots == [8, 16, 24]
        assert plan.owf_nonce_offset == 8
        assert plan.owf_cipher_offset == 24

    def test_buffer_sits_directly_below_canaries(self):
        plan = PSSPPass().plan_frame(BUFFERED)
        buf = plan.var("buf")
        # Buffer occupies [rbp-80, rbp-16): flush against the canary pair.
        assert buf.offset == 16 + 64

    def test_scalars_below_arrays(self):
        decl = parse(
            "int f() { int x; char buf[16]; x = 1; buf[0] = 2; return x; }"
        ).functions[0]
        plan = SSPPass().plan_frame(decl)
        assert plan.var("buf").offset < plan.var("x").offset

    def test_frame_size_aligned(self):
        for pass_obj in (SSPPass(), PSSPPass(), PSSPOWFPass()):
            plan = pass_obj.plan_frame(BUFFERED)
            assert plan.frame_size % 16 == 0

    def test_lv_interleaves_canary_above_each_critical_var(self):
        plan = PSSPLVPass().plan_frame(TWO_CRITICAL)
        assert len(plan.canary_slots) == 2
        slot1, slot2 = plan.canary_slots
        a, b = plan.var("a"), plan.var("b")
        # canary1 at rbp-8, a below it, canary2 below a, b below canary2.
        assert slot1 == 8
        assert a.offset == slot1 + 8
        assert slot2 == a.offset + 8
        assert b.offset == slot2 + 8

    def test_lv_auto_criticalizes_arrays_when_none_marked(self):
        plan = PSSPLVPass().plan_frame(BUFFERED)
        assert plan.protected
        # One critical variable still gets TWO canaries: with a single
        # slot the frame canary would equal the TLS canary verbatim
        # (zero random draws), reopening byte-by-byte.
        assert len(plan.canary_slots) == 2

    def test_lv_single_var_prologue_still_draws_randomness(self):
        from repro.compiler.codegen import compile_source

        binary = compile_source(
            "int f() { critical char a[8]; a[0] = 1; return 0; }",
            protection="pssp-lv",
        )
        rdrands = [i for i in binary.function("f").body if i.op == "rdrand"]
        assert len(rdrands) == 1


class TestEmittedCode:
    def _ops(self, scheme, source=None, function="f"):
        binary = compile_source(
            source or "int f() { char buf[16]; buf[0] = 1; return 0; }",
            protection=scheme,
        )
        return [i.op for i in binary.function(function).body], binary

    def test_ssp_reads_fs28(self):
        binary = compile_source(
            "int f() { char buf[16]; buf[0] = 1; return 0; }", protection="ssp"
        )
        notes = [i.note for i in binary.function("f").body]
        assert "ssp-prologue" in notes and "ssp-epilogue" in notes

    def test_pssp_nt_uses_rdrand(self):
        ops, _ = self._ops("pssp-nt")
        assert "rdrand" in ops

    def test_pssp_avoids_rdrand(self):
        ops, _ = self._ops("pssp")
        assert "rdrand" not in ops

    def test_owf_uses_rdtsc_and_aes(self):
        ops, binary = self._ops("pssp-owf")
        assert "rdtsc" in ops
        calls = [
            i.operands[0].name
            for i in binary.function("f").body
            if i.op == "call"
        ]
        assert calls.count("AES_ENCRYPT_128") == 2  # prologue + epilogue

    def test_lv_two_vars_single_rdrand(self):
        source = """
int f() {
    critical char a[8];
    critical char b[8];
    a[0] = 1;
    return 0;
}
"""
        binary = compile_source(source, protection="pssp-lv")
        rdrands = [i for i in binary.function("f").body if i.op == "rdrand"]
        assert len(rdrands) == 1  # m-1 draws for m=2 canaries (Table V)

    def test_lv_four_vars_three_rdrands(self):
        source = """
int f() {
    critical char a[8];
    critical char b[8];
    critical char c[8];
    critical char d[8];
    a[0] = 1;
    return 0;
}
"""
        binary = compile_source(source, protection="pssp-lv")
        rdrands = [i for i in binary.function("f").body if i.op == "rdrand"]
        assert len(rdrands) == 3

    def test_lv_post_write_check_after_overflow_vector(self):
        source = """
int f(int n) {
    critical char buf[16];
    read(0, buf, n);
    return 0;
}
"""
        binary = compile_source(source, protection="pssp-lv")
        notes = [i.note for i in binary.function("f").body]
        assert "pssp-lv-postwrite" in notes

    def test_lv_no_post_write_check_after_benign_call(self):
        source = """
int f(int n) {
    critical char buf[16];
    buf[0] = 1;
    return strlen(buf);
}
"""
        binary = compile_source(source, protection="pssp-lv")
        notes = [i.note for i in binary.function("f").body]
        assert "pssp-lv-postwrite" not in notes

    def test_unprotected_function_has_no_instrumentation(self):
        binary = compile_source(
            "int g(int n) { return n; }", protection="pssp"
        )
        assert binary.function("g").protected == ""
        assert all("pssp" not in i.note for i in binary.function("g").body)

    def test_protected_flag_recorded(self):
        _, binary = self._ops("pssp")
        assert binary.function("f").protected == "pssp"
        assert binary.protection == "pssp"

    def test_dynaguard_maintains_cab(self):
        ops, binary = self._ops("dynaguard")
        assert "inc" in ops and "dec" in ops

    def test_dcr_embeds_offsets(self):
        ops, _ = self._ops("dcr")
        assert "shr" in ops and "shl" in ops


class TestRegistry:
    def test_all_schemes_registered(self):
        names = available_passes()
        for name in ("ssp", "pssp", "pssp-nt", "pssp-lv", "pssp-owf",
                     "pssp-gb", "dynaguard", "dcr", "none"):
            assert name in names

    def test_get_pass_by_instance(self):
        pssp = PSSPPass()
        assert get_pass(pssp) is pssp

    def test_get_pass_none(self):
        assert isinstance(get_pass(None), NoProtection)

    def test_unknown_pass_rejected(self):
        with pytest.raises(ProtectionError):
            get_pass("quantum-canary")
