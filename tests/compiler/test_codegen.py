"""Code-generation correctness: compiled programs must compute right."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deploy import build, deploy
from repro.errors import CompileError
from repro.kernel.kernel import Kernel


def run_main(source, scheme="none", stdin=b"", seed=2):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="t")
    process, _ = deploy(kernel, binary, scheme)
    if stdin:
        process.feed_stdin(stdin)
    result = process.run()
    assert result.state == "exited", f"crashed: {result.crash}"
    return result.exit_status


class TestArithmetic:
    def test_constants_and_operators(self):
        assert run_main("int main() { return 2 + 3 * 4; }") == 14

    def test_division_and_modulo(self):
        assert run_main("int main() { return 17 / 5 * 10 + 17 % 5; }") == 32

    def test_bitwise(self):
        assert run_main("int main() { return (12 & 10) | (1 ^ 3); }") == 10

    def test_shifts(self):
        assert run_main("int main() { return (1 << 6) >> 2; }") == 16

    def test_unary_minus_and_not(self):
        assert run_main("int main() { return -(0 - 9); }") == 9
        assert run_main("int main() { return !0 + !5; }") == 1

    def test_bitwise_not(self):
        assert run_main("int main() { return (~0) & 0xff; }") == 255

    def test_comparisons(self):
        assert run_main(
            "int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3)"
            " + (1 == 1) + (1 != 1); }"
        ) == 4

    def test_short_circuit_and(self):
        # Division by zero on the right must never execute.
        assert run_main("int main() { int z; z = 0; return z && (1 / z); }") == 0

    def test_short_circuit_or(self):
        assert run_main("int main() { int z; z = 0; return 1 || (1 / z); }") == 1


class TestControlFlow:
    def test_if_else(self):
        source = """
int pick(int x) {
    if (x > 10) { return 1; }
    else { return 2; }
}
int main() { return pick(20) * 10 + pick(3); }
"""
        assert run_main(source) == 12

    def test_while_loop(self):
        assert run_main("""
int main() {
    int i; int acc;
    i = 0;
    acc = 0;
    while (i < 10) { acc = acc + i; i = i + 1; }
    return acc;
}
""") == 45

    def test_for_loop_with_break_continue(self):
        assert run_main("""
int main() {
    int acc;
    acc = 0;
    for (int i = 0; i < 100; i = i + 1) {
        if (i % 2) { continue; }
        if (i >= 10) { break; }
        acc = acc + i;
    }
    return acc;
}
""") == 0 + 2 + 4 + 6 + 8

    def test_nested_loops(self):
        assert run_main("""
int main() {
    int total;
    total = 0;
    for (int i = 0; i < 4; i = i + 1) {
        for (int j = 0; j < 4; j = j + 1) {
            total = total + i * j;
        }
    }
    return total;
}
""") == 36

    def test_early_return_passes_canary_check(self):
        # Multiple exits must all route through the epilogue check.
        source = """
int f(int x) {
    char buf[16];
    buf[0] = 1;
    if (x) { return 11; }
    return 22;
}
int main() { return f(1) + f(0); }
"""
        assert run_main(source, scheme="pssp") == 33


class TestFunctions:
    def test_six_arguments(self):
        source = """
int add6(int a, int b, int c, int d, int e, int f) {
    return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
}
int main() { return add6(1, 1, 1, 1, 1, 1); }
"""
        assert run_main(source) == 21

    def test_recursion(self):
        source = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }
"""
        assert run_main(source) == 55

    def test_mutual_recursion(self):
        source = """
int is_even(int n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
int is_odd(int n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
int main() { return is_even(10) * 2 + is_odd(7); }
"""
        assert run_main(source) == 3

    def test_implicit_return_zero(self):
        assert run_main("int main() { int x; x = 5; }") == 0

    def test_too_many_arguments_rejected(self):
        with pytest.raises(CompileError):
            build("int main() { return f(1,2,3,4,5,6,7); }", "none")


class TestArraysAndPointers:
    def test_int_array_indexing(self):
        assert run_main("""
int main() {
    int a[8];
    for (int i = 0; i < 8; i = i + 1) { a[i] = i * i; }
    return a[5] + a[2];
}
""") == 29

    def test_char_array_bytes(self):
        assert run_main("""
int main() {
    char b[8];
    b[0] = 300;      // truncates to one byte
    b[1] = 'A';
    return b[0] + b[1];
}
""") == (300 & 0xFF) + 65

    def test_pointer_deref_and_address_of(self):
        assert run_main("""
int main() {
    int x; int *p;
    x = 5;
    p = &x;
    *p = 9;
    return x;
}
""") == 9

    def test_pointer_arithmetic_scales(self):
        assert run_main("""
int main() {
    int a[4];
    int *p;
    a[2] = 77;
    p = a;
    return *(p + 2);
}
""") == 77

    def test_char_pointer_arithmetic_unit_stride(self):
        assert run_main("""
int main() {
    char *s;
    s = "abc";
    return *(s + 1);
}
""") == ord("b")

    def test_array_argument_decays(self):
        assert run_main("""
int sum(int *a, int n) {
    int acc;
    acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + a[i]; }
    return acc;
}
int main() {
    int data[4];
    data[0] = 1; data[1] = 2; data[2] = 3; data[3] = 4;
    return sum(data, 4);
}
""".replace("; data", ";\n    data")) == 10

    def test_string_literal_interning(self):
        binary = build(
            'int main() { return strlen("dup") + strlen("dup"); }', "none"
        )
        blobs = list(binary.rodata.values())
        assert blobs.count(b"dup\x00") == 1

    def test_undeclared_variable_rejected(self):
        with pytest.raises(CompileError):
            build("int main() { return nope_var + 1; }", "none")
        # (unknown bare names in call/lea position resolve at link time)


@settings(max_examples=25, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=1000),
    b=st.integers(min_value=1, max_value=1000),
    c=st.integers(min_value=0, max_value=100),
)
def test_arithmetic_matches_python(a, b, c):
    """Property: compiled arithmetic equals the host's arithmetic."""
    expected = ((a + c) * 3 - b) % 256
    expected = expected if expected >= 0 else expected + 256
    source = f"""
int main() {{
    int a; int b; int c;
    a = {a}; b = {b}; c = {c};
    return (((a + c) * 3 - b) % 256 + 256) % 256;
}}
"""
    assert run_main(source) == expected


@settings(max_examples=15, deadline=None)
@given(values=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8))
def test_array_sum_matches_python(values):
    assignments = "\n    ".join(
        f"data[{i}] = {v};" for i, v in enumerate(values)
    )
    source = f"""
int main() {{
    int data[8];
    int acc;
    {assignments}
    acc = 0;
    for (int i = 0; i < {len(values)}; i = i + 1) {{ acc = acc + data[i]; }}
    return acc & 255;
}}
"""
    assert run_main(source) == sum(values) & 255
