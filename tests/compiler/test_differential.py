"""Differential testing: random MiniC programs vs a Python reference.

Hypothesis generates small expression trees and statement sequences; each
program is evaluated twice — by the simulated machine (through the full
compiler + CPU pipeline) and by a host-side reference interpreter — and
the results must agree.  This is the strongest correctness net over the
code generator, and it runs under every protection scheme to prove that
instrumentation never changes semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

MASK = (1 << 64) - 1


def _to_signed(value: int) -> int:
    value &= MASK
    return value - (1 << 64) if value & (1 << 63) else value


# -- a tiny expression AST the test owns -------------------------------------

_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


@st.composite
def expressions(draw, depth=0):
    """Generate (minic_text, python_eval(env)) pairs."""
    if depth >= 3 or draw(st.booleans()):
        kind = draw(st.sampled_from(["const", "var"]))
        if kind == "const":
            value = draw(st.integers(min_value=0, max_value=1000))
            return str(value), lambda env, v=value: v
        name = draw(st.sampled_from(["a", "b", "c"]))
        return name, lambda env, n=name: env[n]
    op = draw(st.sampled_from(sorted(_BINOPS)))
    left_text, left_eval = draw(expressions(depth=depth + 1))
    right_text, right_eval = draw(expressions(depth=depth + 1))
    fn = _BINOPS[op]
    return (
        f"({left_text} {op} {right_text})",
        lambda env, f=fn, l=left_eval, r=right_eval: f(l(env), r(env)),
    )


def run_compiled(source: str, scheme: str = "none", seed: int = 5) -> int:
    kernel = Kernel(seed)
    binary = build(source, scheme, name="diff")
    process, _ = deploy(kernel, binary, scheme)
    result = process.run()
    assert result.state == "exited", f"crashed: {result.crash}"
    return result.exit_status


@settings(max_examples=40, deadline=None)
@given(
    expr=expressions(),
    a=st.integers(min_value=0, max_value=500),
    b=st.integers(min_value=0, max_value=500),
    c=st.integers(min_value=0, max_value=500),
)
def test_expression_differential(expr, a, b, c):
    text, evaluate = expr
    expected = _to_signed(evaluate({"a": a, "b": b, "c": c})) & 0xFF
    source = f"""
int main() {{
    int a; int b; int c;
    a = {a}; b = {b}; c = {c};
    return ({text}) & 0xff;
}}
"""
    assert run_compiled(source) == expected


@settings(max_examples=15, deadline=None)
@given(
    expr=expressions(),
    a=st.integers(min_value=0, max_value=200),
    b=st.integers(min_value=0, max_value=200),
    c=st.integers(min_value=0, max_value=200),
    scheme=st.sampled_from(["ssp", "pssp", "pssp-nt"]),
)
def test_protection_never_changes_semantics(expr, a, b, c, scheme):
    """Add a buffer so the function is protected, then cross-check."""
    text, evaluate = expr
    expected = _to_signed(evaluate({"a": a, "b": b, "c": c})) & 0xFF
    source = f"""
int compute(int a, int b, int c) {{
    char guard_trigger[16];
    guard_trigger[0] = 1;
    return ({text}) & 0xff;
}}
int main() {{
    return compute({a}, {b}, {c});
}}
"""
    assert run_compiled(source, scheme) == expected


@settings(max_examples=15, deadline=None)
@given(
    expr=expressions(),
    a=st.integers(min_value=0, max_value=200),
    optimize_seed=st.integers(min_value=0, max_value=10),
)
def test_optimizer_differential(expr, a, optimize_seed):
    """Optimized and unoptimized builds must agree."""
    from repro.compiler.codegen import compile_source

    text, evaluate = expr
    source = f"""
int main() {{
    int a; int b; int c;
    a = {a}; b = {a} + 1; c = 7;
    return ({text}) & 0xff;
}}
"""
    kernel = Kernel(optimize_seed)
    plain = compile_source(source, protection="none")
    tight = compile_source(source, protection="none", optimize=True)
    process_plain, _ = deploy(kernel, plain, "none")
    process_tight, _ = deploy(kernel, tight, "none")
    assert process_plain.run().exit_status == process_tight.run().exit_status


@settings(max_examples=10, deadline=None)
@given(
    iterations=st.integers(min_value=0, max_value=12),
    step=st.integers(min_value=1, max_value=5),
    threshold=st.integers(min_value=0, max_value=40),
)
def test_loop_differential(iterations, step, threshold):
    expected = 0
    i = 0
    while i < iterations:
        if expected > threshold:
            expected -= threshold
        expected += i * step
        i += 1
    source = f"""
int main() {{
    int acc; int i;
    acc = 0;
    for (i = 0; i < {iterations}; i = i + 1) {{
        if (acc > {threshold}) {{ acc = acc - {threshold}; }}
        acc = acc + i * {step};
    }}
    return acc & 0xff;
}}
"""
    assert run_compiled(source) == expected & 0xFF
