"""Optimizer: folding, peephole, and the §V-E2 reordering hazard."""

import pytest

from repro.compiler.codegen import compile_program, compile_source
from repro.compiler.optimizer import fold_program, peephole, reorder_declarations
from repro.compiler.parser import parse
from repro.core.deploy import deploy
from repro.crypto.random import EntropySource
from repro.kernel.kernel import Kernel
from repro.libc.builtins import build_natives


def run_binary(binary, scheme="none", stdin=b"", seed=2):
    kernel = Kernel(seed)
    process, _ = deploy(kernel, binary, scheme)
    if stdin:
        process.feed_stdin(stdin)
    return process.run()


PROGRAMS = [
    ("int main() { return 2 + 3 * 4; }", 14),
    ("int main() { return (1 << 4) | 3; }", 19),
    ("int main() { if (1 + 1 == 2) { return 7; } return 8; }", 7),
    ("int main() { int x; x = 5; return x * (10 / 2); }", 25),
    ("int main() { return !0 && (4 > 2); }", 1),
]


class TestConstantFolding:
    @pytest.mark.parametrize("source,expected", PROGRAMS)
    def test_semantics_preserved(self, source, expected):
        plain = compile_source(source, protection="none")
        folded = compile_source(source, protection="none", optimize=True)
        assert run_binary(plain).exit_status == expected
        assert run_binary(folded).exit_status == expected

    def test_folding_shrinks_code(self):
        source = "int main() { return 1 + 2 + 3 + 4 + 5 + 6; }"
        plain = compile_source(source, protection="none")
        folded = compile_source(source, protection="none", optimize=True)
        assert folded.text_size() < plain.text_size()

    def test_constant_branch_pruned(self):
        source = "int main() { if (0) { return 1; } return 2; }"
        folded = compile_source(source, protection="none", optimize=True)
        plain = compile_source(source, protection="none")
        assert folded.text_size() < plain.text_size()
        assert run_binary(folded).exit_status == 2

    def test_dead_branch_with_declaration_kept(self):
        # Pruning must not orphan frame slots.
        source = """
int main() {
    int x;
    x = 3;
    if (0) { int dead; dead = 1; x = dead; }
    return x;
}
"""
        folded = compile_source(source, protection="none", optimize=True)
        assert run_binary(folded).exit_status == 3

    def test_division_by_constant_zero_not_folded(self):
        # 1/0 must fault at runtime, not crash the compiler.
        source = "int main() { int z; z = 0; return 1 / (z + 0); }"
        folded = compile_source(source, protection="none", optimize=True)
        assert run_binary(folded).crashed


class TestPeephole:
    def test_push_pop_fused(self):
        source = "int main() { return strlen(\"abc\"); }"
        plain = compile_source(source, protection="none")
        tight = compile_source(source, protection="none", optimize=True)
        # push+pop (2 instructions, 4 cycles) becomes one mov (1 cycle);
        # encoded size may grow by a byte — the win is cycles, not bytes.
        assert len(tight.function("main")) < len(plain.function("main"))
        assert run_binary(tight).cycles < run_binary(plain).cycles
        assert run_binary(tight).exit_status == 3

    def test_labels_survive_fusion(self):
        source = """
int main() {
    int acc;
    acc = 0;
    for (int i = 0; i < 5; i = i + 1) { acc = acc + strlen("xy"); }
    return acc;
}
"""
        tight = compile_source(source, protection="none", optimize=True)
        assert run_binary(tight).exit_status == 10

    def test_push_pop_across_label_not_fused(self):
        from repro.isa.instructions import Function, Reg

        function = Function("f")
        function.emit("push", Reg("rax"))
        function.label_here(".target")
        function.emit("pop", Reg("rcx"))
        function.emit("ret")
        optimized = peephole(function)
        ops = [i.op for i in optimized.body]
        assert ops == ["push", "pop", "ret"]  # fusion refused

    def test_protected_builds_survive_optimization(self):
        source = """
int handler(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""
        binary = compile_source(source, protection="pssp", optimize=True)
        kernel = Kernel(4)
        process, _ = deploy(kernel, binary, "pssp")
        process.feed_stdin(b"A" * 100)
        assert process.call("handler", (100,)).smashed

    def test_optimized_code_costs_less(self):
        source = """
int main() {
    int acc;
    acc = 0;
    for (int i = 0; i < 20; i = i + 1) { acc = acc + i * 2; }
    return acc & 255;
}
"""
        plain = run_binary(compile_source(source, protection="none"))
        tight = run_binary(
            compile_source(source, protection="none", optimize=True)
        )
        assert tight.exit_status == plain.exit_status
        assert tight.cycles <= plain.cycles


class TestDeclarationReordering:
    SOURCE = """
int handler(int n) {
    critical char secret[8];
    critical char buf[16];
    secret[0] = 1;
    read(0, buf, 4096);
    return secret[0];
}
int main() { return 0; }
"""

    def _build(self, shuffle_seed):
        program = parse(self.SOURCE)
        reorder_declarations(program, EntropySource(shuffle_seed))
        return compile_program(program, protection="pssp-lv", name="t")

    @pytest.mark.parametrize("shuffle_seed", [0, 1, 2, 3])
    def test_lv_survives_any_declaration_order(self, shuffle_seed):
        """§V-E2: slot reordering breaks naive variable canaries; our LV
        pass derives layout from the declarations it actually sees, so
        every order still interleaves correctly and detects overflow."""
        binary = self._build(shuffle_seed)
        kernel = Kernel(90 + shuffle_seed)
        process, _ = deploy(kernel, binary, "pssp-lv")
        process.feed_stdin(b"A" * 64)
        assert process.call("handler", (64,)).smashed

    @pytest.mark.parametrize("shuffle_seed", [0, 1, 2, 3])
    def test_lv_benign_ok_after_reorder(self, shuffle_seed):
        binary = self._build(shuffle_seed)
        kernel = Kernel(95 + shuffle_seed)
        process, _ = deploy(kernel, binary, "pssp-lv")
        process.feed_stdin(b"hi")
        assert process.call("handler", (2,)).state == "exited"
