"""MiniC lexer."""

import pytest

from repro.compiler.lexer import Token, TokenStream, tokenize
from repro.errors import CompileError


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("int foo critical char")
        assert [t.kind for t in tokens[:-1]] == ["kw", "ident", "kw", "kw"]

    def test_decimal_and_hex_integers(self):
        tokens = tokenize("42 0x2A 0")
        assert [t.value for t in tokens[:-1]] == [42, 42, 0]

    def test_string_literal_with_escapes(self):
        token = tokenize(r'"a\nb\\c"')[0]
        assert token.kind == "string"
        assert token.text == "a\nb\\c"

    def test_char_literal(self):
        token = tokenize("'Z'")[0]
        assert token.kind == "char"
        assert token.value == ord("Z")

    def test_escaped_char_literal(self):
        assert tokenize(r"'\n'")[0].value == 10
        assert tokenize(r"'\0'")[0].value == 0

    def test_multichar_operators_maximal_munch(self):
        assert kinds("a <= b << c == d") == [
            ("ident", "a"), ("op", "<="), ("ident", "b"), ("op", "<<"),
            ("ident", "c"), ("op", "=="), ("ident", "d"),
        ]

    def test_compound_assignment_tokens(self):
        assert [t.text for t in tokenize("x += 1")[:-1]] == ["x", "+=", "1"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* never ends")


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(CompileError):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(CompileError):
            tokenize('"ab\ncd"')

    def test_multichar_char_literal(self):
        with pytest.raises(CompileError):
            tokenize("'ab'")

    def test_unknown_escape(self):
        with pytest.raises(CompileError):
            tokenize(r'"\q"')


class TestTokenStream:
    def test_accept_and_expect(self):
        stream = TokenStream(tokenize("int x"))
        assert stream.accept("kw", "int")
        assert stream.expect("ident").text == "x"

    def test_expect_failure_raises_with_line(self):
        stream = TokenStream(tokenize("int"))
        stream.next()
        with pytest.raises(CompileError):
            stream.expect("ident")

    def test_peek_does_not_consume(self):
        stream = TokenStream(tokenize("a b"))
        assert stream.peek().text == "a"
        assert stream.peek(1).text == "b"
        assert stream.next().text == "a"

    def test_next_sticks_at_eof(self):
        stream = TokenStream(tokenize("a"))
        stream.next()
        assert stream.next().kind == "eof"
        assert stream.next().kind == "eof"
