"""P-SSP-LV detection *timing*: at-write vs at-return (paper §V-E2).

The paper worries that "it could be too late to detect their overflow at
function return" — the corrupted variable gets *used* before the
epilogue runs.  The pass's ``check_on_write`` option is exactly that
design decision; this module demonstrates both sides.
"""

from repro.compiler.passes.pssp_lv import PSSPLVPass
from repro.core.deploy import deploy
from repro.compiler.codegen import compile_source
from repro.kernel.kernel import Kernel

#: The flag is both corrupted AND used before the function returns.
USE_BEFORE_RETURN = """
int check_login(int n) {
    critical char secret[8];
    critical char buf[16];
    secret[0] = 0;
    read(0, buf, 4096);
    if (secret[0]) {
        puts("GRANTED");
    }
    return 0;
}
int main() { return 0; }
"""


def deploy_with(pass_obj, seed=31):
    kernel = Kernel(seed)
    binary = compile_source(USE_BEFORE_RETURN, protection=pass_obj, name="v")
    binary.protection = "pssp-lv"
    process, _ = deploy(kernel, binary, "pssp-lv")
    return process


# 16 bytes fill buf; 8 more cross buf's canary; 8 more flip secret.
PAYLOAD = b"A" * 16 + b"B" * 8 + b"\x01" * 8


class TestCheckOnWrite:
    def test_at_write_check_fires_before_the_flag_is_used(self):
        process = deploy_with(PSSPLVPass(check_on_write=True))
        process.feed_stdin(PAYLOAD)
        result = process.call("check_login", (len(PAYLOAD),))
        assert result.smashed
        # The corrupted flag never got used: no GRANTED output.
        assert b"GRANTED" not in process.stdout

    def test_at_return_check_is_too_late(self):
        """Without post-write checks the overflow IS detected — but only
        at the epilogue, after the attacker already enjoyed the flag."""
        process = deploy_with(PSSPLVPass(check_on_write=False))
        process.feed_stdin(PAYLOAD)
        result = process.call("check_login", (len(PAYLOAD),))
        assert result.smashed            # still caught eventually...
        assert b"GRANTED" in process.stdout  # ...but the damage was done

    def test_benign_identical_either_way(self):
        for check_on_write in (True, False):
            process = deploy_with(PSSPLVPass(check_on_write=check_on_write))
            process.feed_stdin(b"pw")
            result = process.call("check_login", (2,))
            assert result.state == "exited"
            assert b"GRANTED" not in process.stdout
