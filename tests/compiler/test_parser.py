"""MiniC parser: AST shapes and rejection of malformed programs."""

import pytest

from repro.compiler import ast_nodes as ast
from repro.compiler.parser import parse
from repro.errors import CompileError


def first_function(source):
    return parse(source).functions[0]


class TestDeclarations:
    def test_function_with_params(self):
        function = first_function("int f(int a, char *b) { return 0; }")
        assert function.name == "f"
        assert [p.name for p in function.params] == ["a", "b"]
        assert function.params[1].ctype.is_pointer

    def test_void_paramless(self):
        function = first_function("int f(void) { return 0; }")
        assert function.params == []

    def test_array_declaration(self):
        function = first_function("int f() { char buf[64]; return 0; }")
        declaration = function.body[0]
        assert isinstance(declaration, ast.Declaration)
        assert declaration.ctype.is_array
        assert declaration.ctype.array_length == 64

    def test_critical_qualifier(self):
        function = first_function("int f() { critical char buf[8]; return 0; }")
        assert function.body[0].critical is True

    def test_declaration_with_initializer(self):
        function = first_function("int f() { int x = 1 + 2; return x; }")
        assert isinstance(function.body[0].init, ast.Binary)

    def test_has_buffer(self):
        with_buffer = first_function("int f() { int a[4]; return 0; }")
        without = first_function("int f() { int a; return 0; }")
        assert with_buffer.has_buffer()
        assert not without.has_buffer()

    def test_local_declarations_sees_nested(self):
        function = first_function("""
int f() {
    if (1) { int inner; inner = 2; }
    while (0) { char nested[4]; }
    for (int i = 0; i < 2; i = i + 1) { }
    return 0;
}
""")
        names = [d.name for d in function.local_declarations()]
        assert names == ["inner", "nested", "i"]


class TestExpressions:
    def test_precedence_mul_over_add(self):
        function = first_function("int f() { return 1 + 2 * 3; }")
        expr = function.body[0].value
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        function = first_function("int f() { return (1 + 2) * 3; }")
        assert function.body[0].value.op == "*"

    def test_comparison_binds_looser_than_arith(self):
        expr = first_function("int f() { return 1 + 2 < 4; }").body[0].value
        assert expr.op == "<"

    def test_logical_operators(self):
        expr = first_function("int f() { return 1 && 0 || 1; }").body[0].value
        assert expr.op == "||"

    def test_assignment_right_associative(self):
        function = first_function("int f() { int a; int b; a = b = 1; return a; }")
        assign = function.body[2].expr
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.value, ast.Assign)

    def test_compound_assignment_desugars(self):
        function = first_function("int f() { int a; a += 3; return a; }")
        assign = function.body[1].expr
        assert isinstance(assign, ast.Assign)
        assert assign.value.op == "+"

    def test_increment_desugars(self):
        function = first_function("int f() { int a; a++; return a; }")
        assign = function.body[1].expr
        assert isinstance(assign, ast.Assign)
        assert assign.value.op == "+"

    def test_index_and_call(self):
        function = first_function("int f() { int a[4]; return g(a[1], 2); }")
        call = function.body[1].value
        assert isinstance(call, ast.Call)
        assert isinstance(call.args[0], ast.Index)

    def test_unary_chain(self):
        expr = first_function("int f(int *p) { return -*p; }").body[0].value
        assert expr.op == "-"
        assert expr.operand.op == "*"

    def test_address_of(self):
        expr = first_function("int f() { int a; return g(&a); }").body[1].value
        assert expr.args[0].op == "&"


class TestStatements:
    def test_if_else(self):
        function = first_function(
            "int f(int x) { if (x) { return 1; } else { return 2; } }"
        )
        statement = function.body[0]
        assert isinstance(statement, ast.If)
        assert statement.otherwise

    def test_if_without_braces(self):
        function = first_function("int f(int x) { if (x) return 1; return 2; }")
        assert isinstance(function.body[0], ast.If)

    def test_while(self):
        function = first_function("int f() { while (1) { break; } return 0; }")
        loop = function.body[0]
        assert isinstance(loop, ast.While)
        assert isinstance(loop.body[0], ast.Break)

    def test_for_full(self):
        function = first_function(
            "int f() { for (int i = 0; i < 3; i = i + 1) { continue; } return 0; }"
        )
        loop = function.body[0]
        assert isinstance(loop, ast.For)
        assert loop.init and loop.cond and loop.step

    def test_for_empty_clauses(self):
        loop = first_function("int f() { for (;;) { break; } return 0; }").body[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_bare_block(self):
        function = first_function("int f() { { int x; x = 1; } return 0; }")
        assert isinstance(function.body[0], ast.If)  # flattened wrapper


class TestErrors:
    @pytest.mark.parametrize("source", [
        "int f() { return 0 }",          # missing semicolon
        "int f( { return 0; }",          # bad params
        "int f() { if 1 return 0; }",    # missing parens
        "f() { return 0; }",             # missing return type
        "int f() { int x[]; return 0; }",  # missing array length
        "int f() { break; }",            # handled at codegen, parses fine?
    ])
    def test_malformed_rejected(self, source):
        if source == "int f() { break; }":
            parse(source)  # parses; codegen rejects
            return
        with pytest.raises(CompileError):
            parse(source)

    def test_program_collects_functions(self):
        program = parse("int a() { return 1; } int b() { return 2; }")
        assert [f.name for f in program.functions] == ["a", "b"]
        assert program.function("b").name == "b"
        with pytest.raises(KeyError):
            program.function("c")
