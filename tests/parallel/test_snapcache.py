"""Spawn-image cache: content addressing, disk tier, warm ≡ cold."""

import pytest

from repro.core.deploy import build, deploy, get_scheme
from repro.kernel.kernel import Kernel
from repro.machine.debug import architectural_snapshot, snapshot_divergences
from repro.parallel.snapcache import (
    SnapshotCache,
    directory_stats,
    image_cache,
    reset_image_cache,
)

SOURCE = """
int work(int n) {
    char buf[32];
    buf[0] = n;
    return buf[0] + 1;
}
int main() { return work(4); }
"""

OTHER = """
int main() { return 9; }
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_image_cache()
    yield
    reset_image_cache()


def spec():
    return get_scheme("pssp")


class TestContentAddress:
    def test_hit_on_identical_deployment(self):
        cache = SnapshotCache()
        binary = build(SOURCE, "pssp")
        first = cache.image_for(binary, spec())
        second = cache.image_for(binary, spec())
        assert first is second
        stats = cache.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_different_binary_different_entry(self):
        cache = SnapshotCache()
        cache.image_for(build(SOURCE, "pssp"), spec())
        cache.image_for(build(OTHER, "pssp"), spec())
        assert cache.stats()["misses"] == 2

    def test_stack_size_is_part_of_the_key(self):
        cache = SnapshotCache()
        binary = build(SOURCE, "pssp")
        a = cache.image_for(binary, spec(), stack_size=0x40000)
        b = cache.image_for(binary, spec(), stack_size=0x80000)
        assert a is not b
        assert cache.stats()["misses"] == 2

    def test_scheme_toolchain_is_part_of_the_key(self):
        cache = SnapshotCache()
        binary = build(SOURCE, "pssp")
        cache.image_for(binary, get_scheme("pssp"))
        cache.image_for(binary, get_scheme("dcr"))
        assert cache.stats()["misses"] == 2

    def test_lru_bound_evicts(self):
        cache = SnapshotCache(max_entries=1)
        cache.image_for(build(SOURCE, "pssp"), spec())
        cache.image_for(build(OTHER, "pssp"), spec())
        assert len(cache) == 1
        assert cache.stats()["evictions"] == 1

    def test_disabled_cache_builds_fresh(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_CACHE", "0")
        cache = SnapshotCache()
        binary = build(SOURCE, "pssp")
        a = cache.image_for(binary, spec())
        b = cache.image_for(binary, spec())
        assert a is not b
        assert len(cache) == 0


class TestDiskTier:
    def test_miss_persists_then_second_cache_hits_disk(self, tmp_path):
        binary = build(SOURCE, "pssp")
        writer = SnapshotCache(directory=str(tmp_path))
        writer.image_for(binary, spec())
        assert writer.stats()["disk_stores"] == 1
        manifest = directory_stats(str(tmp_path))
        assert manifest["images"] == 1
        assert manifest["bytes"] > 0

        reader = SnapshotCache(directory=str(tmp_path))
        image = reader.image_for(binary, spec())
        stats = reader.stats()
        assert stats["disk_hits"] == 1
        assert stats["misses"] == 0
        # The disk-served image boots a working process.
        from repro.libc.builtins import build_natives

        kernel = Kernel(3)
        runtime = spec().make_runtime()
        process = kernel.spawn(binary, natives=build_natives(), image=image)
        runtime.install(process)
        assert process.run().state == "exited"

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        binary = build(SOURCE, "pssp")
        writer = SnapshotCache(directory=str(tmp_path))
        writer.image_for(binary, spec())
        for entry in tmp_path.iterdir():
            entry.write_bytes(b"garbage")
        reader = SnapshotCache(directory=str(tmp_path))
        reader.image_for(binary, spec())
        stats = reader.stats()
        assert stats["disk_hits"] == 0
        assert stats["misses"] == 1

    def test_env_knob_enables_disk_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_DIR", str(tmp_path))
        cache = SnapshotCache()
        assert cache.directory == str(tmp_path)


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("scheme", ["pssp", "pssp-owf", "dynaguard"])
    def test_deploy_is_bit_identical_with_and_without_cache(
        self, scheme, monkeypatch
    ):
        binary = build(SOURCE, scheme)

        def boot():
            kernel = Kernel(77)
            process, _ = deploy(kernel, binary, scheme)
            process.run()
            return process

        warm = boot()  # miss: builds the image
        warm2 = boot()  # hit: boots from the cached image
        assert image_cache().stats()["hits"] >= 1
        monkeypatch.setenv("REPRO_SNAPSHOT_CACHE", "0")
        reset_image_cache()
        cold = boot()  # cache disabled: full cold boot
        for a, b in ((warm, warm2), (warm, cold)):
            assert snapshot_divergences(
                architectural_snapshot(a), architectural_snapshot(b)
            ) == []

    def test_aslr_deploys_bypass_the_cache(self):
        binary = build(SOURCE, "pssp")
        kernel = Kernel(12)
        deploy(kernel, binary, "pssp", aslr=True)
        stats = image_cache().stats()
        assert stats["hits"] + stats["misses"] == 0


class TestDiskTierNegativePaths:
    """Damaged `.simg` entries must miss cleanly, never crash a boot.

    The failure contract: reading a truncated, corrupted, or
    version-stale image raises a *typed* ``SnapshotError``, the cache
    swallows exactly that (plus ``OSError``), counts a miss on
    ``snapshot_cache_misses_total``, and rebuilds the image fresh.
    """

    def _seeded_entry(self, tmp_path):
        binary = build(SOURCE, "pssp")
        writer = SnapshotCache(directory=str(tmp_path))
        writer.image_for(binary, spec())
        (entry,) = list(tmp_path.iterdir())
        return binary, entry

    def _assert_clean_miss(self, tmp_path, binary):
        from repro import telemetry

        before = telemetry.snapshot()
        reader = SnapshotCache(directory=str(tmp_path))
        image = reader.image_for(binary, spec())
        stats = reader.stats()
        assert stats["disk_hits"] == 0
        assert stats["misses"] == 1
        delta = telemetry.delta(before)
        assert delta.get("snapshot_cache_misses_total") == 1
        # The rebuilt image still boots a working process.
        from repro.libc.builtins import build_natives

        process = Kernel(5).spawn(
            binary, natives=build_natives(), image=image
        )
        spec().make_runtime().install(process)
        assert process.run().state == "exited"

    def test_truncated_image_misses_cleanly(self, tmp_path):
        binary, entry = self._seeded_entry(tmp_path)
        blob = entry.read_bytes()
        entry.write_bytes(blob[: len(blob) // 2])
        self._assert_clean_miss(tmp_path, binary)

    def test_zero_byte_image_misses_cleanly(self, tmp_path):
        binary, entry = self._seeded_entry(tmp_path)
        entry.write_bytes(b"")
        self._assert_clean_miss(tmp_path, binary)

    def test_stale_version_header_misses_cleanly(self, tmp_path):
        from repro.errors import SnapshotError
        from repro.machine.snapshot import load_spawn_image

        binary, entry = self._seeded_entry(tmp_path)
        blob = entry.read_bytes()
        assert blob.startswith(b"PSSPSNAP 1 ")
        stale = blob.replace(b"PSSPSNAP 1 ", b"PSSPSNAP 999 ", 1)
        entry.write_bytes(stale)
        # The failure is typed — exactly what the cache swallows.
        with pytest.raises(SnapshotError):
            load_spawn_image(stale)
        self._assert_clean_miss(tmp_path, binary)

    def test_corrupt_image_error_is_typed(self, tmp_path):
        from repro.errors import SnapshotError
        from repro.machine.snapshot import load_spawn_image

        _, entry = self._seeded_entry(tmp_path)
        for blob in (b"garbage", entry.read_bytes()[:40]):
            with pytest.raises(SnapshotError):
                load_spawn_image(blob)


class TestDirectoryStats:
    def test_missing_directory_is_empty(self, tmp_path):
        manifest = directory_stats(str(tmp_path / "nope"))
        assert manifest["images"] == 0
        assert manifest["bytes"] == 0
