"""Crash tolerance and accounting of the shard executor.

The worker functions live at module level so the process pool can pick
them up by reference; the deterministic ``attempt`` argument (1 on the
first try, 2 after the re-queue) lets them fail on exactly one attempt.
"""

import os
import signal
import time

import pytest

from repro.parallel import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    plan_shards,
    run_shards,
)


def _double_worker(config, seeds, attempt):
    return [seed * 2 for seed in seeds]


def _flaky_worker(config, seeds, attempt):
    """Raise on the first attempt for the configured seed's shard."""
    if attempt == 1 and config["poison"] in seeds:
        raise RuntimeError(f"transient failure on {seeds}")
    return list(seeds)


def _always_raises(config, seeds, attempt):
    raise RuntimeError("permanent infrastructure failure")


def _suicidal_worker(config, seeds, attempt):
    """SIGKILL the worker process once — a real crash, not an exception."""
    if attempt == 1 and config["poison"] in seeds:
        os.kill(os.getpid(), signal.SIGKILL)
    return list(seeds)


def _sleepy_worker(config, seeds, attempt):
    time.sleep(config["sleep"])
    return list(seeds)


class TestRunShards:
    def test_results_in_shard_order(self):
        shards = plan_shards(0, 8)
        outcomes, timed_out = run_shards(_double_worker, {}, shards, jobs=2)
        assert not timed_out
        assert [o.shard.index for o in outcomes] == [s.index for s in shards]
        assert all(o.status == STATUS_OK for o in outcomes)
        merged = [value for o in outcomes for value in o.value]
        assert merged == [seed * 2 for seed in range(8)]

    def test_on_result_sees_every_shard(self):
        seen = []
        shards = plan_shards(0, 6)
        run_shards(
            _double_worker, {}, shards, jobs=2,
            on_result=lambda outcome: seen.append(outcome.shard.index),
        )
        assert sorted(seen) == [s.index for s in shards]

    def test_worker_exception_retried_once_then_ok(self):
        shards = plan_shards(0, 4)
        outcomes, _ = run_shards(
            _flaky_worker, {"poison": 2}, shards, jobs=2,
        )
        assert all(o.status == STATUS_OK for o in outcomes)
        poisoned = [o for o in outcomes if 2 in o.shard.seeds]
        assert poisoned and poisoned[0].attempts == 2

    def test_persistent_exception_becomes_failed_outcome(self):
        shards = plan_shards(0, 3)
        outcomes, _ = run_shards(_always_raises, {}, shards, jobs=2)
        assert [o.status for o in outcomes] == [STATUS_FAILED] * 3
        assert all(o.attempts == 2 for o in outcomes)
        assert all("RuntimeError" in o.error for o in outcomes)

    def test_killed_worker_recovers_without_losing_shards(self):
        # A SIGKILL mid-shard breaks the whole pool; the executor must
        # rebuild it and still account for every planned shard.
        shards = plan_shards(0, 6)
        outcomes, _ = run_shards(
            _suicidal_worker, {"poison": 3}, shards, jobs=2,
        )
        assert len(outcomes) == len(shards)
        by_seed = {o.shard.seeds[0]: o for o in outcomes}
        assert by_seed[3].status == STATUS_OK  # retried after the crash
        assert by_seed[3].attempts == 2
        # Nothing was silently dropped: all seeds are in OK results.
        covered = sorted(
            seed for o in outcomes if o.ok for seed in o.value
        )
        assert covered == list(range(6))

    def test_timeout_kills_stuck_shard(self):
        shards = plan_shards(0, 1)
        outcomes, _ = run_shards(
            _sleepy_worker, {"sleep": 30.0}, shards, jobs=1,
            retries=0, timeout=0.5,
        )
        assert len(outcomes) == 1
        assert outcomes[0].status == STATUS_FAILED
        assert "timeout" in outcomes[0].error

    def test_deadline_skips_unstarted_shards(self):
        shards = plan_shards(0, 5)
        outcomes, timed_out = run_shards(
            _double_worker, {}, shards, jobs=2, deadline=0.0,
        )
        assert timed_out
        assert len(outcomes) == len(shards)
        assert all(o.status == STATUS_SKIPPED for o in outcomes)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_shards(_double_worker, {}, plan_shards(0, 2), jobs=0)

    def test_empty_plan(self):
        outcomes, timed_out = run_shards(_double_worker, {}, [], jobs=2)
        assert outcomes == [] and not timed_out
