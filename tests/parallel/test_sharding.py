"""Shard planning and the shared ``--jobs`` resolution rules."""

import argparse

import pytest

from repro.parallel import (
    JOBS_ENV_VAR,
    MAX_SHARD_SEEDS,
    TARGET_SHARDS,
    add_jobs_argument,
    default_jobs,
    plan_shards,
    resolve_jobs,
    shard_size_for,
)


class TestShardPlan:
    def test_covers_interval_exactly(self):
        shards = plan_shards(2018, 50)
        seeds = [seed for shard in shards for seed in shard.seeds]
        assert seeds == list(range(2018, 2068))

    def test_ordered_and_indexed(self):
        shards = plan_shards(0, 100)
        assert [s.index for s in shards] == list(range(len(shards)))
        for left, right in zip(shards, shards[1:]):
            assert left.seeds[-1] < right.seeds[0]

    def test_partition_is_jobs_independent(self):
        # The plan takes no jobs parameter at all — this pins the
        # invariant that nothing scheduling-related can leak into it.
        assert plan_shards(7, 33) == plan_shards(7, 33)

    def test_small_budget_one_seed_per_shard(self):
        assert shard_size_for(4) == 1
        assert [len(s) for s in plan_shards(0, 4)] == [1, 1, 1, 1]

    def test_large_budget_targets_shard_count(self):
        size = shard_size_for(160)
        assert size == 10
        assert len(plan_shards(0, 160)) == TARGET_SHARDS

    def test_huge_budget_caps_shard_size(self):
        assert shard_size_for(10_000) == MAX_SHARD_SEEDS

    def test_skip_removes_completed_seeds(self):
        shards = plan_shards(10, 6, skip={10, 12, 13})
        seeds = [seed for shard in shards for seed in shard.seeds]
        assert seeds == [11, 14, 15]

    def test_zero_budget_is_empty(self):
        assert plan_shards(0, 0) == []

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(0, 10, shard_size=0)


class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert default_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "1")
        assert resolve_jobs(None) == 1

    def test_env_var_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError):
            default_jobs()

    def test_env_var_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "0")
        with pytest.raises(ValueError):
            default_jobs()

    def test_explicit_below_one_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(-4)

    def test_capped_at_cpu_count(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        assert resolve_jobs(64) == 2

    def test_env_capped_at_cpu_count(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "64")
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        assert resolve_jobs(None) == 2


class TestJobsArgument:
    def _parser(self):
        parser = argparse.ArgumentParser()
        add_jobs_argument(parser)
        return parser

    def test_default_is_none(self):
        assert self._parser().parse_args([]).jobs is None

    def test_parses_positive(self):
        assert self._parser().parse_args(["--jobs", "4"]).jobs == 4

    def test_rejects_zero_as_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            self._parser().parse_args(["--jobs", "0"])
        assert excinfo.value.code == 2  # argparse usage error

    def test_rejects_garbage_as_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            self._parser().parse_args(["--jobs", "lots"])
        assert excinfo.value.code == 2
