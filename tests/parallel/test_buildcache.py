"""Content addressing, isolation, and bounds of the build cache."""

import pytest

from repro.binfmt.serialize import dumps
from repro.core.deploy import build, get_scheme
from repro.fuzz.mutants import MUTANTS, planted
from repro.parallel.buildcache import (
    BuildCache,
    build_cache,
    reset_build_cache,
    toolchain_fingerprint,
)

SOURCE = """
int work(int n) {
    char buf[32];
    buf[0] = n;
    return buf[0] + 1;
}
int main() { return work(4); }
"""


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_build_cache()
    yield
    reset_build_cache()


class _FakeBinary:
    def __init__(self, tag):
        self.tag = tag

    def clone(self):
        return _FakeBinary(self.tag)


class TestContentAddress:
    def test_hit_on_identical_source_and_scheme(self):
        cache = build_cache()
        first = build(SOURCE, "pssp")
        second = build(SOURCE, "pssp")
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        # The served image is bit-identical to a fresh compile...
        assert dumps(first) == dumps(second)
        # ...but never the same object: hits hand out private clones.
        assert first is not second
        assert first.functions is not second.functions

    def test_miss_on_scheme_change(self):
        cache = build_cache()
        build(SOURCE, "pssp")
        build(SOURCE, "ssp")
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 2

    def test_miss_on_source_change(self):
        cache = build_cache()
        build(SOURCE, "pssp")
        build(SOURCE.replace("work(4)", "work(5)"), "pssp")
        assert cache.stats()["misses"] == 2

    def test_miss_on_toolchain_config_change(self, monkeypatch):
        cache = build_cache()
        build(SOURCE, "pssp")
        # A toolchain-version bump changes every fingerprint, so the
        # same (source, scheme) request no longer matches old entries.
        monkeypatch.setattr(
            "repro.parallel.buildcache.TOOLCHAIN_VERSION", 2
        )
        build(SOURCE, "pssp")
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 2

    def test_fingerprint_covers_spec_fields(self):
        pssp = get_scheme("pssp")
        assert toolchain_fingerprint(pssp) != toolchain_fingerprint(
            get_scheme("pssp-binary")
        )
        # dynaguard vs dynaguard-dbi differ only in the DBI multiplier.
        assert toolchain_fingerprint(
            get_scheme("dynaguard")
        ) != toolchain_fingerprint(get_scheme("dynaguard-dbi"))

    def test_cached_entry_immune_to_caller_mutation(self):
        mutated = build(SOURCE, "pssp")
        mutated.functions.clear()
        fresh = build(SOURCE, "pssp")
        assert fresh.functions  # the pristine image survived


class TestBounds:
    def test_eviction_bound_respected(self):
        cache = BuildCache(max_entries=2)
        spec = get_scheme("pssp")
        for tag in ("a", "b", "c"):
            cache.get_or_build(
                tag, spec, "x", lambda tag=tag: _FakeBinary(tag)
            )
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1

    def test_lru_evicts_oldest(self):
        cache = BuildCache(max_entries=2)
        spec = get_scheme("pssp")
        cache.get_or_build("a", spec, "x", lambda: _FakeBinary("a"))
        cache.get_or_build("b", spec, "x", lambda: _FakeBinary("b"))
        cache.get_or_build("a", spec, "x", lambda: _FakeBinary("a2"))  # hit
        cache.get_or_build("c", spec, "x", lambda: _FakeBinary("c"))
        # "b" (least recently used) was evicted, "a" survived.
        assert cache.get_or_build(
            "a", spec, "x", lambda: _FakeBinary("a3")
        ).tag == "a"
        assert cache.stats()["hits"] == 2

    def test_size_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_CACHE_SIZE", "7")
        assert reset_build_cache().max_entries == 7

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            BuildCache(max_entries=0)


class TestKnobsAndInvalidation:
    def test_disable_env_bypasses_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUILD_CACHE", "0")
        cache = reset_build_cache()
        build(SOURCE, "pssp")
        build(SOURCE, "pssp")
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_cache_false_forces_fresh_compile(self):
        cache = build_cache()
        build(SOURCE, "pssp")
        build(SOURCE, "pssp", cache=False)
        assert cache.stats()["hits"] == 0

    def test_planted_mutant_clears_cache(self):
        cache = build_cache()
        build(SOURCE, "pssp")
        assert len(cache) == 1
        with planted(MUTANTS[0]):
            # Entry + exit both clear: nothing built pre-mutant may
            # satisfy an in-mutant request, and vice versa.
            assert len(cache) == 0
            build(SOURCE, "pssp")
            assert len(cache) == 1
        assert len(cache) == 0
