"""The determinism invariant: ``jobs=N`` reports ≡ ``jobs=1`` reports.

The quick tests here run small campaigns; the ``slow``-marked ones at
the bottom are the 50-case acceptance versions run by the scheduled CI
jobs.  The killer workers are module-level so the pool can pickle them,
and they crash on ``attempt == 1`` only — deterministic, no flag files.
"""

import json
import os
import signal

import pytest

import repro.faults.campaign as campaign_module
import repro.fuzz.fuzzer as fuzzer_module
from repro import telemetry
from repro.attacks.trials import attack_campaign
from repro.faults.campaign import run_campaign
from repro.fuzz.fuzzer import run_fuzz


def _fuzz_json(report):
    return json.dumps(report.to_json(), sort_keys=True)


def _chaos_json(report):
    return json.dumps(report.to_json(), sort_keys=True)


class TestFuzzBitIdentity:
    def test_small_campaign_identical_across_jobs(self):
        serial = run_fuzz(10, base_seed=2018, shrink=False, health=False)
        pooled = run_fuzz(
            10, base_seed=2018, shrink=False, health=False, jobs=2
        )
        assert _fuzz_json(serial) == _fuzz_json(pooled)

    def test_telemetry_counts_match_serial(self):
        before = telemetry.snapshot()
        run_fuzz(6, base_seed=3000, shrink=False, health=False)
        serial_delta = telemetry.delta(before)
        before = telemetry.snapshot()
        run_fuzz(6, base_seed=3000, shrink=False, health=False, jobs=2)
        pooled_delta = telemetry.delta(before)
        for name in ("fuzz_programs_total", "fuzz_runs_total"):
            assert serial_delta.get(name) == pooled_delta.get(name)

    def test_report_json_roundtrip(self):
        report = run_fuzz(4, base_seed=2018, shrink=False, health=False)
        from repro.fuzz.fuzzer import FuzzReport

        assert _fuzz_json(FuzzReport.from_json(report.to_json())) \
            == _fuzz_json(report)


class TestChaosBitIdentity:
    def test_small_campaign_identical_across_jobs(self):
        serial = run_campaign(8, base_seed=2018)
        pooled = run_campaign(8, base_seed=2018, jobs=2)
        assert _chaos_json(serial) == _chaos_json(pooled)

    def test_scheme_filter_identical_across_jobs(self):
        serial = run_campaign(8, base_seed=2018, schemes=("pssp",))
        pooled = run_campaign(8, base_seed=2018, schemes=("pssp",), jobs=2)
        assert _chaos_json(serial) == _chaos_json(pooled)

    def test_parallel_checkpoint_resumes_serially(self, tmp_path):
        path = str(tmp_path / "chaos.json")
        first = run_campaign(6, base_seed=2018, jobs=2, checkpoint_path=path)
        resumed = run_campaign(
            6, base_seed=2018, checkpoint_path=path, resume=True
        )
        assert _chaos_json(resumed) == _chaos_json(first)


class TestAttackBitIdentity:
    def test_campaign_identical_across_jobs(self):
        serial = attack_campaign(
            "pssp", base_seed=4000, repeats=4, max_trials=300
        )
        pooled = attack_campaign(
            "pssp", base_seed=4000, repeats=4, max_trials=300, jobs=2
        )
        assert json.dumps(serial.to_json()) == json.dumps(pooled.to_json())


# -- worker-crash handling ----------------------------------------------------


_REAL_FUZZ_WORKER = fuzzer_module._fuzz_shard_worker
_REAL_CHAOS_WORKER = campaign_module._chaos_shard_worker


def _fuzz_killer_once(config, seeds, attempt):
    """Die mid-shard on the first attempt at the first shard."""
    if attempt == 1 and seeds[0] == config["_poison_seed"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_FUZZ_WORKER(config, seeds, attempt)


def _fuzz_killer_always(config, seeds, attempt):
    if seeds[0] == config["_poison_seed"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_FUZZ_WORKER(config, seeds, attempt)


def _chaos_killer_always(config, seeds, attempt):
    if seeds[0] == config["_poison_seed"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_CHAOS_WORKER(config, seeds, attempt)


def _poison(monkeypatch, seed):
    """Make the campaigns' run_shards inject a poison seed into config.

    The pool pickles the submitted worker by reference, so the killer
    must be a module-level function; the seed it should die on rides in
    through the (pickled) config dict instead of a closure.
    """
    from repro import parallel

    real_run_shards = parallel.run_shards

    def poisoned_run_shards(worker, config, shards, **kwargs):
        return real_run_shards(
            worker, dict(config, _poison_seed=seed), shards, **kwargs
        )

    monkeypatch.setattr("repro.parallel.run_shards", poisoned_run_shards)


class TestWorkerLoss:
    def test_killed_fuzz_worker_retried_to_full_report(self, monkeypatch):
        serial = run_fuzz(6, base_seed=2018, shrink=False, health=False)
        monkeypatch.setattr(
            fuzzer_module, "_fuzz_shard_worker", _fuzz_killer_once
        )
        _poison(monkeypatch, 2018)
        pooled = run_fuzz(
            6, base_seed=2018, shrink=False, health=False, jobs=2
        )
        # The retry absorbed the crash (and was recorded): the payload
        # is still complete and bit-identical to the serial run.
        assert any(a == 2 for a in pooled.shard_attempts.values())
        pooled.shard_attempts = {}
        assert _fuzz_json(serial) == _fuzz_json(pooled)

    def test_lost_fuzz_shard_reported_never_dropped(self, monkeypatch):
        monkeypatch.setattr(
            fuzzer_module, "_fuzz_shard_worker", _fuzz_killer_always
        )
        _poison(monkeypatch, 2018)
        report = run_fuzz(
            6, base_seed=2018, shrink=False, health=False, jobs=2
        )
        # The poisoned shard became an explicit worker-lost failure...
        lost = [f for f in report.health_failures if f.kind == "worker-lost"]
        assert len(lost) == 1
        assert "2018" in lost[0].detail
        # ...which the CLI maps to the infrastructure exit code.
        assert not report.ok
        assert report.infra_only
        # Every other shard still contributed its seeds.
        assert report.programs_checked == 5

    def test_lost_chaos_shard_becomes_infra_errors(self, monkeypatch):
        monkeypatch.setattr(
            campaign_module, "_chaos_shard_worker", _chaos_killer_always
        )
        _poison(monkeypatch, 2019)
        report = run_campaign(6, base_seed=2018, jobs=2)
        # The lost shard's seed surfaced as a per-seed infra error
        # (exit 3 at the CLI), and every other seed completed.
        assert [seed for seed, _ in report.infra_errors] == [2019]
        assert "worker lost" in report.infra_errors[0][1]
        assert sorted(run.seed for run in report.runs) \
            == [2018, 2020, 2021, 2022, 2023]


# -- acceptance-scale campaigns (scheduled CI) --------------------------------


@pytest.mark.slow
@pytest.mark.fuzz
def test_fuzz_50_program_bit_identity():
    serial = run_fuzz(50, base_seed=2018, shrink=False, health=False)
    pooled = run_fuzz(
        50, base_seed=2018, shrink=False, health=False, jobs=4
    )
    assert _fuzz_json(serial) == _fuzz_json(pooled)


@pytest.mark.slow
@pytest.mark.fuzz
def test_chaos_50_schedule_bit_identity():
    serial = run_campaign(50, base_seed=2018)
    pooled = run_campaign(50, base_seed=2018, jobs=4)
    assert _chaos_json(serial) == _chaos_json(pooled)
