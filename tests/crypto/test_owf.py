"""The one-way function F backing P-SSP-OWF."""

from repro.crypto.owf import owf_canary, owf_canary_words, owf_check


KEY_LO = 0x1122334455667788
KEY_HI = 0x99AABBCCDDEEFF00
NONCE = 0xDEADBEEF12345678
RET = 0x0000000000401234


class TestOwfCanary:
    def test_is_sixteen_bytes(self):
        assert len(owf_canary(KEY_LO, KEY_HI, NONCE, RET)) == 16

    def test_deterministic(self):
        a = owf_canary(KEY_LO, KEY_HI, NONCE, RET)
        b = owf_canary(KEY_LO, KEY_HI, NONCE, RET)
        assert a == b

    def test_nonce_sensitivity(self):
        a = owf_canary(KEY_LO, KEY_HI, NONCE, RET)
        b = owf_canary(KEY_LO, KEY_HI, NONCE + 1, RET)
        assert a != b

    def test_return_address_sensitivity(self):
        a = owf_canary(KEY_LO, KEY_HI, NONCE, RET)
        b = owf_canary(KEY_LO, KEY_HI, NONCE, RET + 8)
        assert a != b

    def test_key_sensitivity(self):
        a = owf_canary(KEY_LO, KEY_HI, NONCE, RET)
        b = owf_canary(KEY_LO ^ 1, KEY_HI, NONCE, RET)
        c = owf_canary(KEY_LO, KEY_HI ^ 1, NONCE, RET)
        assert a != b and a != c

    def test_words_match_bytes(self):
        block = owf_canary(KEY_LO, KEY_HI, NONCE, RET)
        lo, hi = owf_canary_words(KEY_LO, KEY_HI, NONCE, RET)
        assert lo == int.from_bytes(block[:8], "little")
        assert hi == int.from_bytes(block[8:], "little")


class TestOwfCheck:
    def test_accepts_genuine_canary(self):
        lo, hi = owf_canary_words(KEY_LO, KEY_HI, NONCE, RET)
        assert owf_check(KEY_LO, KEY_HI, NONCE, RET, lo, hi)

    def test_rejects_tampered_return_address(self):
        lo, hi = owf_canary_words(KEY_LO, KEY_HI, NONCE, RET)
        assert not owf_check(KEY_LO, KEY_HI, NONCE, RET + 16, lo, hi)

    def test_rejects_tampered_nonce(self):
        lo, hi = owf_canary_words(KEY_LO, KEY_HI, NONCE, RET)
        assert not owf_check(KEY_LO, KEY_HI, NONCE ^ 4, RET, lo, hi)

    def test_rejects_tampered_canary(self):
        lo, hi = owf_canary_words(KEY_LO, KEY_HI, NONCE, RET)
        assert not owf_check(KEY_LO, KEY_HI, NONCE, RET, lo ^ 1, hi)
        assert not owf_check(KEY_LO, KEY_HI, NONCE, RET, lo, hi ^ (1 << 63))

    def test_replay_into_other_frame_fails(self):
        # The exposure-resilience property: a canary valid for one return
        # address never validates for another.
        lo, hi = owf_canary_words(KEY_LO, KEY_HI, NONCE, RET)
        other_ret = 0x401FF0
        assert not owf_check(KEY_LO, KEY_HI, NONCE, other_ret, lo, hi)
