"""EntropySource determinism and canary-drawing helpers."""

from repro.crypto.random import EntropySource, terminator_free_word


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = EntropySource(1)
        b = EntropySource(1)
        assert [a.word() for _ in range(10)] == [b.word() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = EntropySource(1)
        b = EntropySource(2)
        assert [a.word() for _ in range(5)] != [b.word() for _ in range(5)]

    def test_fork_derives_independent_stream(self):
        parent = EntropySource(1)
        child = parent.fork()
        parent_words = [parent.word() for _ in range(5)]
        child_words = [child.word() for _ in range(5)]
        assert parent_words != child_words

    def test_fork_is_deterministic(self):
        a = EntropySource(9).fork()
        b = EntropySource(9).fork()
        assert a.word() == b.word()


class TestDraws:
    def test_word_width(self):
        source = EntropySource(3)
        for _ in range(50):
            assert 0 <= source.word(16) < (1 << 16)

    def test_nonzero_word(self):
        source = EntropySource(3)
        for _ in range(200):
            assert source.nonzero_word(4) != 0

    def test_bytes_length(self):
        source = EntropySource(3)
        assert len(source.bytes(13)) == 13
        assert source.bytes(0) == b""

    def test_byte_range(self):
        source = EntropySource(3)
        for _ in range(100):
            assert 0 <= source.byte() <= 255

    def test_randrange(self):
        source = EntropySource(3)
        for _ in range(100):
            assert 0 <= source.randrange(7) < 7

    def test_choice_and_shuffle(self):
        source = EntropySource(3)
        items = list(range(10))
        assert source.choice(items) in items
        shuffled = list(items)
        source.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_draw_counter_increments(self):
        source = EntropySource(3)
        before = source.draws
        source.word()
        source.bytes(4)
        assert source.draws == before + 2


class TestTerminatorFreeWord:
    def test_low_byte_is_zero(self):
        source = EntropySource(5)
        for _ in range(100):
            assert terminator_free_word(source) & 0xFF == 0

    def test_high_bytes_vary(self):
        source = EntropySource(5)
        values = {terminator_free_word(source) for _ in range(20)}
        assert len(values) > 15
