"""AES-128 correctness against FIPS-197 vectors and round-trip laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import (
    BLOCK_SIZE,
    KEY_SIZE,
    decrypt_block,
    encrypt_block,
    expand_key,
)

# FIPS-197 Appendix B / C.1 vectors.
FIPS_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
FIPS_PT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
FIPS_CT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")

C1_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
C1_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
C1_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestVectors:
    def test_fips_appendix_b(self):
        assert encrypt_block(FIPS_KEY, FIPS_PT) == FIPS_CT

    def test_fips_appendix_c1(self):
        assert encrypt_block(C1_KEY, C1_PT) == C1_CT

    def test_fips_appendix_b_decrypt(self):
        assert decrypt_block(FIPS_KEY, FIPS_CT) == FIPS_PT

    def test_fips_appendix_c1_decrypt(self):
        assert decrypt_block(C1_KEY, C1_CT) == C1_PT


class TestKeyExpansion:
    def test_eleven_round_keys(self):
        round_keys = expand_key(FIPS_KEY)
        assert len(round_keys) == 11
        assert all(len(k) == 16 for k in round_keys)

    def test_first_round_key_is_the_key(self):
        assert expand_key(FIPS_KEY)[0] == FIPS_KEY

    def test_fips_final_round_key(self):
        # FIPS-197 A.1 lists w[40..43] = d014f9a8 c9ee2589 e13f0cc8 b6630ca6.
        expected = bytes.fromhex("d014f9a8c9ee2589e13f0cc8b6630ca6")
        assert expand_key(FIPS_KEY)[10] == expected

    def test_wrong_key_size_rejected(self):
        with pytest.raises(ValueError):
            expand_key(b"short")


class TestBlockInterface:
    def test_wrong_block_size_rejected(self):
        with pytest.raises(ValueError):
            encrypt_block(FIPS_KEY, b"tiny")

    def test_wrong_ciphertext_size_rejected(self):
        with pytest.raises(ValueError):
            decrypt_block(FIPS_KEY, b"tiny")

    def test_deterministic(self):
        a = encrypt_block(FIPS_KEY, FIPS_PT)
        b = encrypt_block(FIPS_KEY, FIPS_PT)
        assert a == b

    def test_key_sensitivity(self):
        other_key = bytes([FIPS_KEY[0] ^ 1]) + FIPS_KEY[1:]
        assert encrypt_block(other_key, FIPS_PT) != FIPS_CT

    def test_plaintext_sensitivity(self):
        other_pt = bytes([FIPS_PT[0] ^ 1]) + FIPS_PT[1:]
        assert encrypt_block(FIPS_KEY, other_pt) != FIPS_CT


@settings(max_examples=40, deadline=None)
@given(
    key=st.binary(min_size=KEY_SIZE, max_size=KEY_SIZE),
    plaintext=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
)
def test_roundtrip_property(key, plaintext):
    assert decrypt_block(key, encrypt_block(key, plaintext)) == plaintext


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=KEY_SIZE, max_size=KEY_SIZE),
    plaintext=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
)
def test_encryption_changes_block(key, plaintext):
    # AES is a permutation with no fixed point for these random inputs in
    # practice; at minimum, ciphertext must differ from plaintext for the
    # overwhelmingly common case — tolerate the astronomically unlikely
    # fixed point by checking length and determinism too.
    ciphertext = encrypt_block(key, plaintext)
    assert len(ciphertext) == BLOCK_SIZE
    assert ciphertext == encrypt_block(key, plaintext)
