"""SliceTracer: determinism, zero perturbation, causal structure."""

import json

import pytest

from repro import telemetry
from repro.fleet.campaign import run_fleet_slice
from repro.trace import SliceTracer, TraceConfig

SEED = 20180625
BUDGET = 120


def traced_slice(scheme="ssp", seed=SEED, budget=BUDGET, **config_kwargs):
    tracer = SliceTracer(
        scheme, seed, config=TraceConfig(series_interval=20, **config_kwargs)
    )
    record = run_fleet_slice(
        scheme, seed, request_budget=budget, tracer=tracer
    )
    return tracer, record


class TestTraceConfig:
    def test_roundtrip(self):
        config = TraceConfig(series_interval=7, ring_capacity=9,
                             transcript_limit=3, max_spans=11)
        assert TraceConfig.from_json(config.to_json()) == config

    @pytest.mark.parametrize("field", [
        "series_interval", "ring_capacity", "transcript_limit", "max_spans",
    ])
    def test_rejects_non_positive(self, field):
        with pytest.raises(ValueError):
            TraceConfig(**{field: 0})


class TestDeterminism:
    def test_tracing_does_not_perturb_the_slice(self):
        untraced = run_fleet_slice("ssp", SEED, request_budget=BUDGET)
        tracer, traced = traced_slice()
        # The tracer is a pure observer: the slice record — requests,
        # detections, breaches, cycles, audit — is byte-identical.
        assert traced.to_json() == untraced.to_json()
        assert traced.audit_divergences == []

    def test_two_runs_produce_identical_traces(self):
        first, _ = traced_slice()
        second, _ = traced_slice()
        assert json.dumps(first.trace.to_json(), sort_keys=True) == \
            json.dumps(second.trace.to_json(), sort_keys=True)

    def test_timestamps_are_guest_cycles_not_wall_clock(self):
        tracer, record = traced_slice()
        last_end = max(span.end_cycles for span in tracer.trace.spans)
        assert last_end == pytest.approx(record.cycles)
        assert tracer.clock == record.cycles


class TestCausalStructure:
    def test_requests_thread_to_their_session(self):
        tracer, _ = traced_slice()
        sessions = {
            span.span_id: span for span in tracer.trace.spans
            if span.category == "session"
        }
        requests = [
            span for span in tracer.trace.spans if span.category == "request"
        ]
        assert sessions and requests
        for span in requests:
            assert span.parent_id in sessions
        # Session spans cover their requests on the cycle timeline.
        for span in requests:
            parent = sessions[span.parent_id]
            assert parent.begin_cycles <= span.begin_cycles
            assert span.end_cycles <= parent.end_cycles

    def test_canary_lifecycle_rides_on_request_spans(self):
        tracer, record = traced_slice()
        requests = [
            span for span in tracer.trace.spans if span.category == "request"
        ]
        assert sum(1 for s in requests if s.args["smashed"]) == \
            record.detections
        assert any(s.args["epilogue_checks"] > 0 for s in requests)

    def test_breaches_surface_as_instants_and_bundles(self):
        tracer, record = traced_slice()
        assert record.breaches > 0  # ssp is breachable; the point of it
        breach_instants = [
            i for i in tracer.trace.instants if i.category == "breach"
        ]
        assert len(breach_instants) == record.breaches
        breach_bundles = [
            b for b in tracer.trace.bundles if b["trigger"] == "breach"
        ]
        assert len(breach_bundles) == record.breaches

    def test_fork_instants_match_workers_forked(self):
        tracer, _ = traced_slice()
        forks = [i for i in tracer.trace.instants if i.name == "fork"]
        assert forks
        assert all("shared_pages" in i.args for i in forks)

    def test_flight_recorder_tail_lands_in_the_trace(self):
        tracer, _ = traced_slice()
        kinds = [event["kind"] for event in tracer.trace.events]
        assert "slice-end" in kinds
        assert "request" in kinds
        assert len(kinds) <= tracer.config.ring_capacity


class TestBounds:
    def test_max_spans_bounds_memory_and_counts_drops(self):
        tracer, _ = traced_slice(max_spans=10)
        assert len(tracer.trace.spans) == 10
        assert tracer.trace.spans_dropped > 0

    def test_transcript_is_bounded(self):
        tracer, _ = traced_slice(transcript_limit=2)
        assert len(tracer.transcript()) <= 2

    def test_tracer_reads_never_register_instruments(self):
        # counter_value is a read; tracing must not grow the audited
        # instrument set (the audit would diverge otherwise — which
        # test_tracing_does_not_perturb_the_slice also proves end-to-end).
        before = set(telemetry.registry().instruments())
        traced_slice()
        after = set(telemetry.registry().instruments())
        assert after - before <= {"trace_bundles_captured_total"}
