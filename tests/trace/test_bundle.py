"""Post-mortem bundles: content addressing, IO, exact replay."""

import json

import pytest

from repro.errors import BundleError
from repro.fleet.campaign import run_fleet_slice
from repro.trace import (
    BUNDLE_SUFFIX,
    SliceTracer,
    TraceConfig,
    build_lost_bundle,
    bundle_digest,
    canonical_json,
    load_bundle,
    replay_bundle,
    write_bundle,
)

SEED = 20180625


@pytest.fixture(scope="module")
def breach_bundle():
    """One real breach bundle off an ssp slice (captured once, shared)."""
    tracer = SliceTracer("ssp", SEED, config=TraceConfig(series_interval=20))
    run_fleet_slice("ssp", SEED, request_budget=120, tracer=tracer)
    bundles = [b for b in tracer.trace.bundles if b["trigger"] == "breach"]
    assert bundles, "expected ssp to breach within 120 requests"
    return bundles[0]


class TestContentAddressing:
    def test_digest_is_stable_under_key_order(self):
        a = {"kind": "repro-postmortem", "seed": 1, "trigger": "breach"}
        b = {"trigger": "breach", "kind": "repro-postmortem", "seed": 1}
        assert bundle_digest(a) == bundle_digest(b)
        assert canonical_json(a) == canonical_json(b)

    def test_digest_changes_with_content(self):
        a = {"kind": "repro-postmortem", "seed": 1}
        assert bundle_digest(a) != bundle_digest({**a, "seed": 2})

    def test_write_names_file_by_digest(self, tmp_path, breach_bundle):
        path = write_bundle(breach_bundle, str(tmp_path))
        assert path.endswith(BUNDLE_SUFFIX)
        digest = bundle_digest(breach_bundle)
        assert digest[:16] in path
        # Same content => same file; writing twice is idempotent.
        assert write_bundle(dict(breach_bundle), str(tmp_path)) == path

    def test_write_load_roundtrip(self, tmp_path, breach_bundle):
        path = write_bundle(breach_bundle, str(tmp_path))
        assert load_bundle(path) == breach_bundle


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BundleError):
            load_bundle(str(tmp_path / "nope.pmb"))

    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage.pmb"
        path.write_text("not json{")
        with pytest.raises(BundleError):
            load_bundle(str(path))

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "other.pmb"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(BundleError):
            load_bundle(str(path))

    def test_wrong_version(self, tmp_path, breach_bundle):
        path = tmp_path / "future.pmb"
        path.write_text(json.dumps({**breach_bundle, "version": 999}))
        with pytest.raises(BundleError, match="version"):
            load_bundle(str(path))


class TestReplay:
    def test_breach_bundle_replays_exactly(self, breach_bundle):
        result = replay_bundle(breach_bundle)
        assert result.ok, result.divergences
        assert "POST-MORTEM REPLAY EXACT" in result.render()
        assert canonical_json(result.replayed) == \
            canonical_json(breach_bundle)

    def test_tampered_bundle_is_caught_and_named(self, breach_bundle):
        tampered = json.loads(json.dumps(breach_bundle))
        tampered["events"][-1]["fields"]["requests"] = 999_999
        result = replay_bundle(tampered)
        assert not result.ok
        assert any("'events'" in line for line in result.divergences)
        assert "REPLAY DIVERGENCE" in result.render()

    def test_bundle_without_identity_is_unreadable(self, breach_bundle):
        stripped = {**breach_bundle, "slice": {}}
        with pytest.raises(BundleError, match="replay identity"):
            replay_bundle(stripped)

    def test_worker_lost_bundle_replays_the_seeds(self, breach_bundle):
        identity = dict(breach_bundle["slice"])
        lost = build_lost_bundle("ssp", [SEED], identity)
        lost["budgets"] = {str(SEED): 120}
        result = replay_bundle(lost)
        assert result.ok, result.divergences
        assert result.trigger == "worker-lost"
