"""Span model: pure IDs, hex-float timestamps, lossless round trips."""

from repro.trace import Instant, SliceTrace, Span, span_id


class TestSpanId:
    def test_pure_function_of_arguments(self):
        assert span_id(20180625, 3, 7) == span_id(20180625, 3, 7)

    def test_distinct_across_each_argument(self):
        base = span_id(1, 2, 3)
        assert span_id(4, 2, 3) != base
        assert span_id(1, 5, 3) != base
        assert span_id(1, 2, 6) != base

    def test_argument_order_matters(self):
        # The per-argument salts keep (a, b) and (b, a) apart.
        assert span_id(7, 9, -1) != span_id(9, 7, -1)

    def test_session_and_request_ids_differ(self):
        assert span_id(11, 0) != span_id(11, 0, 0)

    def test_shape_is_sixteen_hex_digits(self):
        for seed in (0, 1, 2**63, -5):
            value = span_id(seed, 0, 0)
            assert len(value) == 16
            int(value, 16)

    def test_no_collisions_over_a_campaign_sized_sample(self):
        seen = set()
        for seed in (20180625, 20180626):
            for session in range(50):
                seen.add(span_id(seed, session))
                for request in range(40):
                    seen.add(span_id(seed, session, request))
        assert len(seen) == 2 * (50 + 50 * 40)


class TestRoundTrips:
    def test_span_roundtrip(self):
        span = Span(
            name="request:smash", category="request", span_id="ab" * 8,
            parent_id="cd" * 8, begin_cycles=123.5, end_cycles=456.25,
            args={"request": 7, "crashed": True},
        )
        assert Span.from_json(span.to_json()) == span

    def test_span_cycles_serialize_as_hex_floats(self):
        span = Span(
            name="s", category="session", span_id="00" * 8, parent_id="",
            begin_cycles=0.1, end_cycles=0.3,
        )
        data = span.to_json()
        assert data["begin_cycles"] == (0.1).hex()
        assert Span.from_json(data).end_cycles == 0.3

    def test_instant_roundtrip(self):
        instant = Instant(
            name="breaker-trip", category="supervisor", at_cycles=99.0,
            parent_id="ef" * 8, args={"trips": 2},
        )
        assert Instant.from_json(instant.to_json()) == instant

    def test_slice_trace_roundtrip(self):
        trace = SliceTrace(
            scheme="pssp", seed=42, chaos_seed=7, sessions=3, requests=30,
            spans=[Span("s", "session", "11" * 8, "", 0.0, 5.0)],
            instants=[Instant("fork", "fork", 1.0)],
            events=[{"seq": 0, "kind": "slice-start", "fields": {}}],
            series=[{"request": 30, "requests": 30,
                     "cycles": (900.0).hex(), "counters": {}}],
            bundles=[{"kind": "repro-postmortem", "trigger": "breach"}],
        )
        restored = SliceTrace.from_json(trace.to_json())
        assert restored == trace
        assert restored.to_json() == trace.to_json()
