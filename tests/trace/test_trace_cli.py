"""CLI surface: ``repro trace``, ``repro postmortem``, fleet trace flags."""

import json

import pytest

from repro import cli
from repro.cli import EXIT_INFRASTRUCTURE, EXIT_OK, EXIT_USAGE, EXIT_VIOLATION


@pytest.fixture(scope="module")
def traced_artifacts(tmp_path_factory):
    """One ``repro trace`` run shared across tests (trace + bundles)."""
    root = tmp_path_factory.mktemp("trace-cli")
    trace_path = root / "trace.json"
    bundle_dir = root / "bundles"
    code = cli.main([
        "trace", "--scheme", "ssp", "--requests", "120",
        "--series-interval", "20",
        "--out", str(trace_path), "--bundle-dir", str(bundle_dir),
    ])
    assert code == EXIT_OK
    bundles = sorted(bundle_dir.glob("*.pmb"))
    assert bundles, "expected ssp to capture at least one breach bundle"
    return trace_path, bundles


class TestTraceCommand:
    def test_writes_parseable_perfetto_json(self, traced_artifacts, capsys):
        trace_path, _ = traced_artifacts
        data = json.loads(trace_path.read_text())
        assert data["traceEvents"]
        assert {"M", "X", "i"} == {e["ph"] for e in data["traceEvents"]}
        assert data["otherData"]["clock_hz"] > 0

    def test_series_table(self, capsys):
        code = cli.main([
            "trace", "--scheme", "ssp", "--requests", "100",
            "--series", "--series-interval", "25",
        ])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "bucket" in out and "det/req" in out
        assert "ssp/slice-20180625" in out

    def test_rejects_bad_series_interval(self, capsys):
        code = cli.main([
            "trace", "--scheme", "ssp", "--requests", "50",
            "--series-interval", "0",
        ])
        assert code == EXIT_USAGE

    def test_rejects_bad_attack_rate(self, capsys):
        code = cli.main([
            "trace", "--scheme", "ssp", "--attack-rate", "nonsense",
        ])
        assert code == EXIT_USAGE


class TestPostmortemCommand:
    def test_replays_a_real_bundle_exactly(self, traced_artifacts, capsys):
        _, bundles = traced_artifacts
        code = cli.main(["postmortem", str(bundles[0])])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "POST-MORTEM REPLAY EXACT" in out

    def test_tampered_bundle_exits_violation(
        self, traced_artifacts, tmp_path, capsys
    ):
        _, bundles = traced_artifacts
        payload = json.loads(bundles[0].read_text())
        payload["events"][-1]["fields"]["requests"] = 424242
        tampered = tmp_path / "tampered.pmb"
        tampered.write_text(json.dumps(payload))
        code = cli.main(["postmortem", str(tampered)])
        out = capsys.readouterr().out
        assert code == EXIT_VIOLATION
        assert "REPLAY DIVERGENCE" in out

    def test_unreadable_bundle_exits_infrastructure(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.pmb"
        garbage.write_text("{not a bundle")
        code = cli.main(["postmortem", str(garbage)])
        assert code == EXIT_INFRASTRUCTURE
        assert "infrastructure error" in capsys.readouterr().err


class TestFleetTraceFlags:
    def test_trace_out_with_checkpoint_is_a_usage_error(
        self, tmp_path, capsys
    ):
        code = cli.main([
            "fleet", "--budget", "100",
            "--trace-out", str(tmp_path / "t.json"),
            "--checkpoint", str(tmp_path / "c.json"),
        ])
        assert code == EXIT_USAGE
        assert "--trace-out" in capsys.readouterr().err

    def test_fleet_writes_trace_and_bundles(self, tmp_path, capsys):
        trace_path = tmp_path / "fleet-trace.json"
        bundle_dir = tmp_path / "bundles"
        code = cli.main([
            "fleet", "--budget", "100", "--slice", "100",
            "--schemes", "ssp",
            "--trace-out", str(trace_path),
            "--bundle-dir", str(bundle_dir),
        ])
        out = capsys.readouterr().out
        assert code == EXIT_OK
        assert "ssp/slice-20180625" in out
        data = json.loads(trace_path.read_text())
        assert data["traceEvents"]
        assert list(bundle_dir.glob("*.pmb"))
