"""Counter time-series: bucketing, the merge algebra, rendering."""

from repro import telemetry
from repro.trace import SeriesSampler, merge_series, render_series

import pytest


def point(request, requests, cycles, **counters):
    return {
        "request": request,
        "requests": requests,
        "cycles": float(cycles).hex(),
        "counters": dict(counters),
    }


class TestSeriesSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SeriesSampler(0)

    def test_buckets_close_on_interval_and_tail(self):
        sampler = SeriesSampler(2)
        sampler.start(0.0)
        clock = 0.0
        for _ in range(5):
            telemetry.count("canary_smashes_detected_total")
            clock += 10.0
            sampler.on_request(clock)
        points = sampler.finish(clock)
        assert [p["requests"] for p in points] == [2, 2, 1]
        assert [p["request"] for p in points] == [2, 4, 5]
        assert float.fromhex(points[0]["cycles"]) == 20.0
        assert float.fromhex(points[2]["cycles"]) == 10.0
        # Deltas, not absolutes: each bucket sees only its own ticks.
        assert points[0]["counters"]["canary_smashes_detected_total"] == 2
        assert points[2]["counters"]["canary_smashes_detected_total"] == 1

    def test_no_tail_point_when_aligned(self):
        sampler = SeriesSampler(3)
        sampler.start(0.0)
        for index in range(6):
            sampler.on_request(float(index + 1))
        assert len(sampler.finish(6.0)) == 2

    def test_counter_reads_never_register_instruments(self):
        # The sampler must read, never create: tracing cannot grow the
        # audited counter set of the run it observes.
        names_before = set(telemetry.registry().instruments())
        sampler = SeriesSampler(1)
        sampler.start(0.0)
        sampler.on_request(1.0)
        sampler.finish(1.0)
        assert set(telemetry.registry().instruments()) == names_before


class TestMergeSeries:
    def test_empty_is_identity(self):
        series = [point(2, 2, 20.0, fleet_requests_total=2)]
        assert merge_series([series, []]) == series
        assert merge_series([[], series]) == series
        assert merge_series([]) == []

    def test_bucketwise_fold(self):
        a = [point(2, 2, 20.0, fleet_requests_total=2),
             point(4, 2, 20.0, fleet_requests_total=2)]
        b = [point(2, 2, 30.0, fleet_requests_total=2,
                   canary_smashes_detected_total=1)]
        merged = merge_series([a, b])
        assert len(merged) == 2
        assert merged[0]["requests"] == 4
        assert float.fromhex(merged[0]["cycles"]) == 50.0
        assert merged[0]["counters"]["fleet_requests_total"] == 4
        assert merged[0]["counters"]["canary_smashes_detected_total"] == 1
        # The shorter slice simply doesn't contribute to later buckets.
        assert merged[1]["requests"] == 2

    def test_associative(self):
        a = [point(2, 2, 10.0, fleet_requests_total=2)]
        b = [point(2, 2, 12.0, fleet_requests_total=2),
             point(4, 2, 12.0, fleet_requests_total=2)]
        c = [point(2, 2, 14.0, fleet_requests_total=2)]
        left = merge_series([merge_series([a, b]), c])
        right = merge_series([a, merge_series([b, c])])
        assert left == right == merge_series([a, b, c])

    def test_merge_does_not_mutate_inputs(self):
        a = [point(2, 2, 10.0, fleet_requests_total=2)]
        b = [point(2, 2, 12.0, fleet_requests_total=2)]
        snapshot = [dict(p, counters=dict(p["counters"])) for p in a]
        merge_series([a, b])
        assert a == snapshot


class TestRenderSeries:
    def test_renders_rows_and_rates(self):
        text = render_series([
            point(2, 2, 700.0, canary_smashes_detected_total=1,
                  fleet_request_crashes_total=2, faults_delivered_total=3),
        ])
        assert "bucket" in text and "0" in text
        assert "0.500" in text  # 1 detection / 2 requests

    def test_renders_empty_series(self):
        assert "no series points" in render_series([])
