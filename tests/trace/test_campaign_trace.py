"""Campaign tracing: jobs-N byte-identity, Perfetto export, lost shards."""

import json
import os
import signal

import pytest

from repro.fleet import campaign as campaign_module
from repro.fleet.campaign import run_fleet
from repro.trace import CampaignTrace, TraceConfig, replay_bundle

CONFIG = TraceConfig(series_interval=25)


def traced_fleet(jobs):
    return run_fleet(
        200, schemes=("ssp", "pssp"), slice_requests=100, jobs=jobs,
        trace=CONFIG,
    )


@pytest.fixture(scope="module")
def serial_and_sharded():
    return traced_fleet(1), traced_fleet(2)


class TestJobsIdentity:
    def test_trace_is_byte_identical_under_jobs(self, serial_and_sharded):
        serial, sharded = serial_and_sharded
        assert json.dumps(serial.trace.to_json(), sort_keys=True) == \
            json.dumps(sharded.trace.to_json(), sort_keys=True)

    def test_perfetto_export_is_byte_identical(self, serial_and_sharded):
        serial, sharded = serial_and_sharded
        assert json.dumps(serial.trace.perfetto(), sort_keys=True) == \
            json.dumps(sharded.trace.perfetto(), sort_keys=True)

    def test_report_artifact_is_unchanged_by_tracing(
        self, serial_and_sharded
    ):
        serial, _ = serial_and_sharded
        untraced = run_fleet(200, schemes=("ssp", "pssp"), slice_requests=100)
        # The trace rides on the object, never in the committed artifact.
        assert "trace" not in serial.to_json()
        assert json.dumps(serial.to_json(), sort_keys=True) == \
            json.dumps(untraced.to_json(), sort_keys=True)

    def test_slices_arrive_in_scheme_seed_order(self, serial_and_sharded):
        _, sharded = serial_and_sharded
        order = [(t.scheme, t.seed) for t in sharded.trace.slices]
        assert order == [
            ("ssp", 20180625), ("ssp", 20180626),
            ("pssp", 20180625), ("pssp", 20180626),
        ]


class TestPerfettoShape:
    def test_container_and_events(self, serial_and_sharded):
        serial, _ = serial_and_sharded
        data = serial.trace.perfetto()
        assert data["traceEvents"]
        assert data["otherData"]["clock_hz"] > 0
        assert data["otherData"]["slices"] == 4
        phases = {event["ph"] for event in data["traceEvents"]}
        assert phases == {"M", "X", "i"}
        processes = {
            event["args"]["name"] for event in data["traceEvents"]
            if event["name"] == "process_name"
        }
        assert processes == {
            "ssp/slice-20180625", "ssp/slice-20180626",
            "pssp/slice-20180625", "pssp/slice-20180626",
        }

    def test_campaign_trace_roundtrip(self, serial_and_sharded):
        serial, _ = serial_and_sharded
        restored = CampaignTrace.from_json(serial.trace.to_json())
        assert restored.to_json() == serial.trace.to_json()
        assert json.dumps(restored.perfetto(), sort_keys=True) == \
            json.dumps(serial.trace.perfetto(), sort_keys=True)


class TestGuards:
    def test_tracing_refuses_checkpoints(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint"):
            run_fleet(
                100, schemes=("ssp",), slice_requests=100, trace=CONFIG,
                checkpoint_path=str(tmp_path / "ckpt.json"),
            )


# The pool pickles workers by reference, so the killer must live at
# import scope; the poison seed rides in through the shipped config.
_REAL_WORKER = campaign_module._fleet_shard_worker


def _killer(config, seeds, attempt):
    if seeds[0] == config["_poison_seed"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_WORKER(config, seeds, attempt)


class TestWorkerLoss:
    def test_lost_shard_leaves_a_replayable_bundle(self, monkeypatch):
        from repro import parallel

        monkeypatch.setattr(campaign_module, "_fleet_shard_worker", _killer)
        real_run_shards = parallel.run_shards

        def poisoned(worker, config, shards, **kwargs):
            return real_run_shards(
                worker, dict(config, _poison_seed=20180625), shards, **kwargs
            )

        monkeypatch.setattr("repro.parallel.run_shards", poisoned)
        report = run_fleet(
            200, schemes=("ssp",), slice_requests=100, jobs=2,
            shard_retries=0, trace=CONFIG,
        )
        assert report.lost_slices > 0
        lost = report.trace.lost_bundles
        # The poisoned shard always leaves a bundle; the pool break can
        # occasionally take an in-flight bystander shard with it, so the
        # count is >= 1, not == 1.
        assert lost
        assert all(b["trigger"] == "worker-lost" for b in lost)
        lost_seeds = [seed for b in lost for seed in b["seeds"]]
        assert 20180625 in lost_seeds
        # Every slice either traced or left a lost bundle — no holes.
        assert len(report.trace.slices) + len(lost_seeds) == 2
        # And each bundle re-runs its lost seeds clean.
        for bundle in lost:
            result = replay_bundle(bundle)
            assert result.ok, result.divergences
