"""Synthetic workload generator."""

import pytest

from repro.core.deploy import build, deploy
from repro.crypto.random import EntropySource
from repro.kernel.kernel import Kernel
from repro.workloads.generator import (
    GeneratorConfig,
    call_density_sweep_configs,
    generate_program,
)


def run(source, scheme="ssp", seed=3):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="gen")
    process, _ = deploy(kernel, binary, scheme)
    return process.run()


class TestGeneration:
    def test_deterministic_given_seed(self):
        config = GeneratorConfig()
        a = generate_program(config, EntropySource(1))
        b = generate_program(config, EntropySource(1))
        assert a == b

    def test_different_seeds_differ(self):
        config = GeneratorConfig()
        a = generate_program(config, EntropySource(1))
        b = generate_program(config, EntropySource(2))
        assert a != b

    def test_function_count_respected(self):
        source = generate_program(GeneratorConfig(functions=6),
                                  EntropySource(1))
        for index in range(6):
            assert f"int worker{index}(" in source

    def test_bufferless_configuration(self):
        source = generate_program(
            GeneratorConfig(buffer_bytes=0), EntropySource(1)
        )
        assert "char buf" not in source

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_generated_programs_run_clean(self, seed):
        source = generate_program(GeneratorConfig(), EntropySource(seed))
        result = run(source)
        assert result.state == "exited", f"seed {seed}: {result.crash}"

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_checksums_stable_across_schemes(self, seed):
        source = generate_program(GeneratorConfig(), EntropySource(seed))
        reference = run(source, "none").exit_status
        for scheme in ("ssp", "pssp", "pssp-nt"):
            assert run(source, scheme).exit_status == reference

    def test_buffered_workers_are_protected(self):
        source = generate_program(GeneratorConfig(buffer_bytes=32),
                                  EntropySource(1))
        binary = build(source, "pssp", name="gen")
        assert binary.function("worker0").protected == "pssp"

    def test_bufferless_workers_unprotected(self):
        source = generate_program(GeneratorConfig(buffer_bytes=0),
                                  EntropySource(1))
        binary = build(source, "pssp", name="gen")
        assert binary.function("worker0").protected == ""


class TestSweepConfigs:
    def test_density_monotone(self):
        configs = call_density_sweep_configs()
        calls = [c.functions * c.outer_iterations for c in configs]
        work = [c.inner_iterations for c in configs]
        assert calls == sorted(calls)
        assert work == sorted(work, reverse=True)

    def test_all_configs_compile_and_run(self):
        for index, config in enumerate(call_density_sweep_configs()):
            source = generate_program(config, EntropySource(100 + index))
            assert run(source).state == "exited"
