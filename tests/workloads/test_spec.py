"""SPEC-like suite: semantic equivalence across protection schemes."""

import pytest

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel
from repro.workloads.spec import SPEC_PROGRAMS, SPECFP, SPECINT, program

#: SPEC-like program sweep across every scheme — excluded from the CI quick-signal subset.
pytestmark = pytest.mark.slow


def run(source, scheme, name, seed=3):
    kernel = Kernel(seed)
    binary = build(source, scheme, name=name)
    process, _ = deploy(kernel, binary, scheme)
    return process.run()


class TestSuiteShape:
    def test_twenty_eight_programs_like_the_paper(self):
        # "We use the 28 programs in SPEC CPU2006 benchmarks" (§VI-A2).
        assert len(SPEC_PROGRAMS) == 28

    def test_int_and_fp_split(self):
        assert len(SPECINT) == 12  # all of SPECint2006
        assert len(SPECFP) == 16

    def test_unique_names(self):
        names = [p.name for p in SPEC_PROGRAMS]
        assert len(set(names)) == len(names)

    def test_lookup(self):
        assert program("perlbench").name == "perlbench"
        with pytest.raises(KeyError):
            program("fortran77")


@pytest.mark.parametrize("spec", SPEC_PROGRAMS, ids=lambda p: p.name)
class TestEveryProgram:
    def test_runs_clean_under_ssp(self, spec):
        result = run(spec.source, "ssp", spec.name)
        assert result.state == "exited", f"{spec.name}: {result.crash}"

    def test_checksum_stable_across_schemes(self, spec):
        """Protection must never change program semantics."""
        reference = run(spec.source, "none", spec.name).exit_status
        for scheme in ("ssp", "pssp", "pssp-nt"):
            status = run(spec.source, scheme, spec.name).exit_status
            assert status == reference, f"{spec.name} under {scheme}"


@pytest.mark.parametrize("spec", [program("perlbench"), program("gcc"),
                                  program("milc")], ids=lambda p: p.name)
@pytest.mark.parametrize("scheme", ["pssp-owf", "pssp-lv", "pssp-gb",
                                    "dynaguard", "dcr", "pssp-binary"])
class TestHeavySchemesOnSample:
    def test_checksum_stable(self, spec, scheme):
        reference = run(spec.source, "none", spec.name).exit_status
        assert run(spec.source, scheme, spec.name).exit_status == reference


class TestOverheadShape:
    def test_pssp_overhead_is_sub_percent_on_average(self):
        """Figure 5's headline: compiler P-SSP costs well under 1%."""
        overheads = []
        for spec in SPEC_PROGRAMS[:6]:
            base = run(spec.source, "ssp", spec.name)
            cand = run(spec.source, "pssp", spec.name)
            overheads.append((cand.cycles - base.cycles) / base.cycles)
        assert 0 <= sum(overheads) / len(overheads) < 0.01

    def test_call_dense_program_costs_more(self):
        """perlbench (call-dense) pays more than lbm (loop-dense)."""
        def overhead(name):
            spec = program(name)
            base = run(spec.source, "ssp", spec.name)
            cand = run(spec.source, "pssp-nt", spec.name)
            return (cand.cycles - base.cycles) / base.cycles

        assert overhead("perlbench") > overhead("lbm")
