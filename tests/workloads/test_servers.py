"""Web-server and database workloads."""

import math

import pytest

from repro.workloads.database import MYSQL, SQLITE
from repro.workloads.webserver import APACHE2, NGINX


class TestWebServers:
    def test_apache_serves_without_failures(self):
        stats = APACHE2.measure("ssp", requests=8)
        assert stats.failures == 0
        assert stats.requests == 8

    def test_nginx_faster_than_apache(self):
        apache = APACHE2.measure("ssp", requests=8)
        nginx = NGINX.measure("ssp", requests=8)
        assert nginx.mean_response_ms < apache.mean_response_ms

    def test_response_times_near_paper(self):
        apache = APACHE2.measure("ssp", requests=8)
        nginx = NGINX.measure("ssp", requests=8)
        assert 32.5 < apache.mean_response_ms < 33.5   # paper: 33.006
        assert 3.0 < nginx.mean_response_ms < 3.2      # paper: 3.088

    def test_pssp_delta_negligible(self):
        base = APACHE2.measure("ssp", requests=8)
        pssp = APACHE2.measure("pssp", requests=8)
        delta = abs(pssp.mean_response_ms - base.mean_response_ms)
        assert delta < 0.01  # third-decimal territory, as in Table III

    def test_deterministic_given_seed(self):
        a = NGINX.measure("ssp", requests=5, seed=99)
        b = NGINX.measure("ssp", requests=5, seed=99)
        assert a.mean_response_ms == b.mean_response_ms

    def test_cpu_cycles_positive(self):
        stats = NGINX.measure("pssp", requests=5)
        assert stats.cpu_cycles_per_request > 0

    def test_thread_mode_serves_cleanly(self):
        # The paper's "multithread mode": pthread workers instead of forks.
        stats = NGINX.measure("pssp", requests=6, mode="thread")
        assert stats.failures == 0
        assert stats.cpu_cycles_per_request > 0

    def test_thread_and_fork_modes_cost_alike(self):
        fork = NGINX.measure("ssp", requests=6, mode="fork")
        thread = NGINX.measure("ssp", requests=6, mode="thread")
        assert thread.cpu_cycles_per_request == pytest.approx(
            fork.cpu_cycles_per_request, rel=0.10
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            NGINX.measure("ssp", requests=1, mode="coroutine")


class TestDatabases:
    def test_mysql_runs_clean(self):
        stats = MYSQL.measure("ssp")
        assert stats.failures == 0
        assert not math.isnan(stats.mean_query_ms)

    def test_sqlite_batch_much_slower_than_mysql_query(self):
        mysql = MYSQL.measure("ssp")
        sqlite = SQLITE.measure("ssp")
        assert sqlite.mean_query_ms > 30 * mysql.mean_query_ms

    def test_query_times_near_paper(self):
        mysql = MYSQL.measure("ssp")
        sqlite = SQLITE.measure("ssp")
        assert 3.0 < mysql.mean_query_ms < 3.7       # paper: 3.33
        assert 160 < sqlite.mean_query_ms < 175      # paper: 167.27

    def test_memory_flat_across_schemes(self):
        base = MYSQL.measure("ssp")
        pssp = MYSQL.measure("pssp")
        assert abs(base.memory_mb - pssp.memory_mb) < 0.01

    def test_memory_near_paper(self):
        assert 21 < MYSQL.measure("ssp").memory_mb < 24     # paper: 22.59
        assert 19 < SQLITE.measure("ssp").memory_mb < 22    # paper: 20.58
