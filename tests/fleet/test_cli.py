"""`repro serve` / `repro fleet`: output, artifacts, and exit codes."""

import json

import pytest

from repro import cli
from repro.fleet.campaign import FleetReport, FleetSchemeReport, FleetSlice
from repro.fleet.traffic import TrafficConfig


class TestServe:
    def test_serve_prints_the_slice_and_exits_zero(self, capsys):
        code = cli.main([
            "serve", "--scheme", "pssp", "--requests", "200",
        ])
        out = capsys.readouterr().out
        assert code == cli.EXIT_OK
        assert "scheme:          pssp" in out
        assert "requests:        200" in out
        assert "detections:" in out

    def test_serve_writes_a_replayable_slice_record(self, tmp_path, capsys):
        path = tmp_path / "slice.json"
        code = cli.main([
            "serve", "--scheme", "ssp", "--requests", "150",
            "--seed", "77", "--out", str(path),
        ])
        assert code == cli.EXIT_OK
        record = FleetSlice.from_json(json.loads(path.read_text()))
        assert record.seed == 77
        assert record.requests == 150

    def test_bad_attack_rate_is_a_usage_error(self, capsys):
        assert cli.main(["serve", "--attack-rate", "oops"]) \
            == cli.EXIT_USAGE


class TestFleet:
    def test_fleet_report_artifact_roundtrips(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        code = cli.main([
            "fleet", "--budget", "200", "--slice", "100",
            "--schemes", "ssp,pssp", "--out", str(path),
        ])
        out = capsys.readouterr().out
        assert code == cli.EXIT_OK
        assert "AUDITED OK" in out
        report = FleetReport.from_json(json.loads(path.read_text()))
        assert report.schemes == ("ssp", "pssp")
        assert report.total_requests >= 396  # leak-atomic slack only

    def test_require_detections_flags_a_blind_scheme(self, capsys):
        # `none` has no canary: the campaign must end with 0 detections
        # and --require-detections must turn that into exit 1.
        code = cli.main([
            "fleet", "--budget", "100", "--slice", "100",
            "--schemes", "none", "--require-detections",
        ])
        err = capsys.readouterr().err
        assert code == cli.EXIT_VIOLATION
        assert "none" in err

    def test_unknown_scheme_is_a_usage_error(self, capsys):
        assert cli.main(["fleet", "--schemes", "nope"]) == cli.EXIT_USAGE

    def test_bad_attack_rate_is_a_usage_error(self, capsys):
        assert cli.main(["fleet", "--attack-rate", "1/0"]) == cli.EXIT_USAGE

    def _canned_report(self, *, lost=(), divergences=()):
        record = FleetSlice(seed=1, request_budget=10)
        record.requests = 10
        record.audit_divergences = list(divergences)
        scheme = FleetSchemeReport(
            scheme="pssp", base_seed=1, request_budget=10,
            slice_requests=10, slices=[record], lost=list(lost),
        )
        return FleetReport(
            base_seed=1, request_budget=10, slice_requests=10,
            config=TrafficConfig(), schemes=("pssp",), reports=[scheme],
        )

    def test_lost_slices_map_to_infrastructure_exit(
        self, monkeypatch, capsys
    ):
        import repro.fleet

        monkeypatch.setattr(
            repro.fleet, "run_fleet",
            lambda *a, **k: self._canned_report(lost=[2]),
        )
        code = cli.main(["fleet", "--budget", "10"])
        assert code == cli.EXIT_INFRASTRUCTURE

    def test_audit_divergence_maps_to_violation_exit(
        self, monkeypatch, capsys
    ):
        import repro.fleet

        monkeypatch.setattr(
            repro.fleet, "run_fleet",
            lambda *a, **k: self._canned_report(
                divergences=["fleet_requests_total: report says 10, "
                             "counters say 0"]
            ),
        )
        code = cli.main(["fleet", "--budget", "10"])
        assert code == cli.EXIT_VIOLATION


class TestChaosFlags:
    def test_chaos_seed_requires_chaos(self, capsys):
        code = cli.main([
            "fleet", "--budget", "100", "--chaos-seed", "7",
        ])
        assert code == cli.EXIT_USAGE
        assert "--chaos-seed requires --chaos" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        code = cli.main(["fleet", "--budget", "100", "--resume"])
        assert code == cli.EXIT_USAGE
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_negative_shard_retries_is_a_usage_error(self, capsys):
        code = cli.main([
            "fleet", "--budget", "100", "--shard-retries", "-1",
        ])
        assert code == cli.EXIT_USAGE

    def test_chaos_campaign_audits_ok_and_renders_supervision(self, capsys):
        code = cli.main([
            "fleet", "--budget", "200", "--slice", "100",
            "--schemes", "pssp", "--chaos", "--chaos-seed", "20180625",
        ])
        out = capsys.readouterr().out
        assert code == cli.EXIT_OK
        assert "chaos: seed 20180625" in out
        assert "supervision:" in out
        assert "AUDITED OK" in out

    def test_checkpoint_artifact_allows_noop_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.json"
        first = cli.main([
            "fleet", "--budget", "200", "--slice", "100",
            "--schemes", "pssp", "--checkpoint", str(ckpt),
        ])
        assert first == cli.EXIT_OK
        assert json.loads(ckpt.read_text())["kind"] == "fleet-checkpoint"
        again = cli.main([
            "fleet", "--budget", "200", "--slice", "100",
            "--schemes", "pssp", "--checkpoint", str(ckpt), "--resume",
        ])
        out = capsys.readouterr().out
        assert again == cli.EXIT_OK
        assert "AUDITED OK" in out
