"""Resumable fleet campaigns: checkpoints, interrupts, requeued shards.

The contract: a campaign interrupted at *any* slice boundary — by an
exception, a SIGTERM, or a lost worker — resumes from its checkpoint
under *any* ``--jobs`` width and finishes with a report byte-identical
to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CampaignError, ShutdownRequested
from repro.fleet import campaign as campaign_module
from repro.fleet.campaign import run_fleet, run_fleet_slice

KWARGS = dict(schemes=("pssp",), slice_requests=100, chaos=True)


def fingerprint(report):
    return json.dumps(report.to_json(), sort_keys=True)


def _interrupt_after(monkeypatch, n):
    """Raise ShutdownRequested after ``n`` completed slices (serial)."""
    real = run_fleet_slice
    state = {"done": 0}

    def interrupting(*args, **kwargs):
        if state["done"] >= n:
            raise ShutdownRequested("test interrupt")
        state["done"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(campaign_module, "run_fleet_slice", interrupting)


class TestCheckpoint:
    def test_checkpoint_written_after_every_slice(self, tmp_path):
        path = tmp_path / "ckpt.json"
        run_fleet(300, checkpoint_path=str(path), **KWARGS)
        data = json.loads(path.read_text())
        assert data["kind"] == "fleet-checkpoint"
        assert sorted(data["slices"]["pssp"]) == [
            "20180625", "20180626", "20180627"
        ]

    def test_interrupted_campaign_resumes_byte_identically(
        self, monkeypatch, tmp_path
    ):
        path = tmp_path / "ckpt.json"
        straight = run_fleet(500, **KWARGS)
        _interrupt_after(monkeypatch, 2)
        with pytest.raises(ShutdownRequested):
            run_fleet(500, checkpoint_path=str(path), **KWARGS)
        monkeypatch.undo()
        done = json.loads(path.read_text())["slices"]["pssp"]
        assert len(done) == 2  # partial progress persisted
        resumed = run_fleet(
            500, checkpoint_path=str(path), resume=True, **KWARGS
        )
        assert fingerprint(resumed) == fingerprint(straight)

    @pytest.mark.parametrize("resume_jobs", [1, 2, 3])
    def test_resume_is_jobs_agnostic(self, monkeypatch, tmp_path, resume_jobs):
        path = tmp_path / "ckpt.json"
        straight = run_fleet(400, **KWARGS)
        _interrupt_after(monkeypatch, 1)
        with pytest.raises(ShutdownRequested):
            run_fleet(400, checkpoint_path=str(path), **KWARGS)
        monkeypatch.undo()
        resumed = run_fleet(
            400, checkpoint_path=str(path), resume=True,
            jobs=resume_jobs, **KWARGS
        )
        assert fingerprint(resumed) == fingerprint(straight)

    def test_mismatched_checkpoint_is_a_typed_error(self, tmp_path):
        path = tmp_path / "ckpt.json"
        run_fleet(200, checkpoint_path=str(path), **KWARGS)
        with pytest.raises(CampaignError):
            # Different budget -> different campaign; refuse to mix.
            run_fleet(300, checkpoint_path=str(path), resume=True, **KWARGS)

    def test_resume_with_missing_checkpoint_starts_fresh(self, tmp_path):
        path = tmp_path / "absent.json"
        report = run_fleet(
            200, checkpoint_path=str(path), resume=True, **KWARGS
        )
        assert fingerprint(report) == fingerprint(run_fleet(200, **KWARGS))


class TestSignalShutdown:
    @pytest.mark.slow
    def test_sigterm_exits_typed_and_resume_is_byte_identical(self, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        out_resumed = tmp_path / "resumed.json"
        out_straight = tmp_path / "straight.json"
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(campaign_module.__file__),
                                os.pardir, os.pardir)
        env["PYTHONPATH"] = os.path.abspath(repo_src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        argv = [
            sys.executable, "-m", "repro", "fleet",
            "--budget", "10000", "--slice", "100", "--schemes", "pssp",
            "--chaos", "--jobs", "2", "--checkpoint", str(ckpt),
        ]
        proc = subprocess.Popen(
            argv, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )
        # Let it make some progress, then pull the plug.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if ckpt.exists() and json.loads(
                ckpt.read_text()
            )["slices"].get("pssp"):
                break
            if proc.poll() is not None:
                break
            time.sleep(0.2)
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 3  # EXIT_INFRASTRUCTURE
        assert b"resume with --checkpoint" in stderr

        resumed = subprocess.run(
            argv + ["--resume", "--out", str(out_resumed)],
            env=env, capture_output=True, timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr.decode()
        straight = subprocess.run(
            [a for a in argv if a not in ("--checkpoint", str(ckpt))]
            + ["--out", str(out_straight)],
            env=env, capture_output=True, timeout=300,
        )
        assert straight.returncode == 0, straight.stderr.decode()
        assert out_resumed.read_bytes() == out_straight.read_bytes()


# -- requeued shards ----------------------------------------------------------

_REAL_FLEET_WORKER = campaign_module._fleet_shard_worker


def _fleet_killer_once(config, seeds, attempt):
    if attempt == 1 and seeds[0] == config["_poison_seed"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_FLEET_WORKER(config, seeds, attempt)


class TestRequeuedShards:
    @given(poison_index=st.integers(0, 3))
    @settings(deadline=None, max_examples=4)
    def test_requeued_shard_payload_matches_first_attempt(
        self, poison_index
    ):
        """Property: whichever shard dies and is requeued, the slices it
        finally delivers are bit-identical to an undisturbed run."""
        from repro import parallel

        straight = run_fleet(400, **KWARGS)
        poison_seed = 20180625 + poison_index

        real_run_shards = parallel.run_shards

        def poisoned_run_shards(worker, config, shards, **kwargs):
            return real_run_shards(
                _fleet_killer_once,
                dict(config, _poison_seed=poison_seed), shards, **kwargs
            )

        original = parallel.run_shards
        parallel.run_shards = poisoned_run_shards
        try:
            retried = run_fleet(400, jobs=2, **KWARGS)
        finally:
            parallel.run_shards = original

        assert retried.lost_slices == 0
        scheme = retried.reports[0]
        assert scheme.campaign_divergences == []
        # Slice payloads are what the maths consumes: bit-identical.
        straight_slices = [s.to_json() for s in straight.reports[0].slices]
        retried_slices = [s.to_json() for s in scheme.slices]
        assert retried_slices == straight_slices
