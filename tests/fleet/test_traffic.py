"""Property-based tests for the deterministic traffic generator.

The generator's contract is what makes fleet campaigns shardable:
``session_plan`` is a *pure function* of ``(config, seed, index)`` and
attack placement respects the configured rate within exact integer
bounds — not in expectation, exactly.  Hypothesis explores the config
space; the assertions are equalities, never tolerances.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.traffic import (
    ATTACK_KINDS,
    SESSION_KINDS,
    TrafficConfig,
    attack_sessions_before,
    is_attack_session,
    schedule,
    session_entropy,
    session_plan,
)


@st.composite
def traffic_configs(draw):
    denominator = draw(st.integers(min_value=1, max_value=24))
    numerator = draw(st.integers(min_value=0, max_value=denominator))
    benign_min = draw(st.integers(min_value=1, max_value=4))
    benign_max = benign_min + draw(st.integers(min_value=0, max_value=6))
    weights = draw(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
        ).filter(lambda w: sum(w) > 0)
    )
    return TrafficConfig(
        attack_numerator=numerator,
        attack_denominator=denominator,
        benign_min_requests=benign_min,
        benign_max_requests=benign_max,
        brute_trial_cap=draw(st.integers(min_value=1, max_value=4000)),
        smash_weight=weights[0],
        brute_weight=weights[1],
        leak_weight=weights[2],
    )


seeds = st.integers(min_value=0, max_value=2**63 - 1)


class TestExactRate:
    @given(config=traffic_configs(), count=st.integers(0, 500))
    @settings(deadline=None)
    def test_attack_count_is_an_exact_integer_bound(self, config, count):
        # Among the first `count` sessions there are *exactly*
        # floor(count * n / d) attacks — the Bresenham invariant.
        placed = sum(
            1 for i in range(count) if is_attack_session(config, i)
        )
        expected = (
            count * config.attack_numerator // config.attack_denominator
        )
        assert placed == expected
        assert attack_sessions_before(config, count) == expected

    @given(config=traffic_configs(), index=st.integers(0, 10_000))
    @settings(deadline=None)
    def test_rate_zero_and_one_are_degenerate(self, config, index):
        allbenign = TrafficConfig(
            attack_numerator=0,
            attack_denominator=config.attack_denominator,
        )
        allattack = TrafficConfig(
            attack_numerator=config.attack_denominator,
            attack_denominator=config.attack_denominator,
        )
        assert not is_attack_session(allbenign, index)
        assert is_attack_session(allattack, index)


class TestPurity:
    @given(config=traffic_configs(), seed=seeds, index=st.integers(0, 2000))
    @settings(deadline=None)
    def test_session_plan_is_a_pure_function(self, config, seed, index):
        first = session_plan(config, seed, index)
        second = session_plan(config, seed, index)
        assert first == second
        # Entropy is derived per-(seed, index), never threaded between
        # sessions: two independent sources yield the same stream.
        assert (
            session_entropy(seed, index).word()
            == session_entropy(seed, index).word()
        )

    @given(
        config=traffic_configs(), seed=seeds, sessions=st.integers(0, 64)
    )
    @settings(deadline=None)
    def test_schedule_equals_pointwise_plans(self, config, seed, sessions):
        # Planning a prefix consults no other session's plan: the batch
        # schedule and index-at-a-time plans are the same object stream.
        plans = schedule(config, seed, sessions)
        assert len(plans) == sessions
        for index, plan in enumerate(plans):
            assert plan == session_plan(config, seed, index)
            assert plan.index == index

    @given(config=traffic_configs(), seed=seeds, index=st.integers(0, 2000))
    @settings(deadline=None)
    def test_plans_respect_config_bounds(self, config, seed, index):
        plan = session_plan(config, seed, index, buffer_size=64)
        assert plan.kind in SESSION_KINDS
        assert plan.is_attack == is_attack_session(config, index)
        if plan.kind == "benign":
            assert (
                config.benign_min_requests
                <= plan.requests
                <= config.benign_max_requests
            )
            assert 1 <= plan.payload_length <= 63  # strictly in-buffer
        else:
            assert plan.kind in ATTACK_KINDS
            assert plan.payload_length == 0
            # An attack kind is only drawn when its weight is positive.
            assert getattr(plan, "kind") and getattr(
                config, f"{plan.kind}_weight"
            ) > 0
            expected = {
                "smash": 1,
                "brute": config.brute_trial_cap,
                "leak": 2,
            }
            assert plan.requests == expected[plan.kind]


class TestConfig:
    @given(config=traffic_configs())
    @settings(deadline=None)
    def test_json_roundtrip(self, config):
        data = json.loads(json.dumps(config.to_json()))
        assert TrafficConfig.from_json(data) == config

    def test_parse_rate(self):
        config = TrafficConfig.parse_rate("3/16", brute_trial_cap=99)
        assert config.attack_numerator == 3
        assert config.attack_denominator == 16
        assert config.brute_trial_cap == 99

    @pytest.mark.parametrize("text", ["", "3", "a/b", "1/0", "9/8"])
    def test_bad_rates_are_typed_errors(self, text):
        with pytest.raises(ValueError):
            TrafficConfig.parse_rate(text)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attack_denominator": 0},
            {"attack_numerator": -1},
            {"benign_min_requests": 0},
            {"benign_min_requests": 5, "benign_max_requests": 4},
            {"brute_trial_cap": 0},
            {"smash_weight": -1},
            {"smash_weight": 0, "brute_weight": 0, "leak_weight": 0},
        ],
    )
    def test_invalid_configs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrafficConfig(**kwargs)
