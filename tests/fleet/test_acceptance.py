"""The seeded 10k-request acceptance campaign, replayed from the corpus.

``corpus/fleet-mixed-10k.json`` pins the full per-scheme summary of a
10 000-request campaign per scheme (40 000 requests total) under the
committed traffic config.  The campaign re-runs here — sharded, like CI
runs it — and must reproduce every summary field *exactly*: requests,
detections, breaches split by kind, time-to-detection, simulated
throughput, and tail latency.  Any drift in the interpreter, the
schemes, fork, the snapshot cache, or the executor shows up as a diff
against the committed numbers.

Marked ``slow`` + ``fuzz``: the quick CI job skips it, the scheduled
job runs it.
"""

import json
from pathlib import Path

import pytest

from repro.fleet.campaign import run_fleet
from repro.fleet.traffic import TrafficConfig

CORPUS = Path(__file__).resolve().parent / "corpus" / "fleet-mixed-10k.json"


@pytest.fixture(scope="module")
def entry():
    return json.loads(CORPUS.read_text())


class TestCorpusHygiene:
    def test_entry_is_well_formed(self, entry):
        assert entry["description"]
        config = TrafficConfig.from_json(entry["config"])
        assert config.to_json() == entry["config"]
        assert entry["request_budget"] == 10_000
        assert set(entry["expected"]) == set(entry["schemes"])

    def test_expected_numbers_tell_the_paper_story(self, entry):
        expected = entry["expected"]
        # Static canaries fall to byte-by-byte brute force...
        assert expected["ssp"]["breaches_by_kind"]["brute"] > 0
        # ...fork-time re-randomization stops it...
        for scheme in ("pssp", "pssp-nt", "pssp-owf"):
            assert expected[scheme]["breaches_by_kind"]["brute"] == 0
        # ...leak-and-replay still works until the OWF binding.
        assert expected["pssp"]["breaches_by_kind"]["leak"] > 0
        assert expected["pssp-owf"]["breaches"] == 0
        for scheme, summary in expected.items():
            assert summary["detections"] > 0, scheme
            assert summary["time_to_detection"] is not None, scheme
            assert summary["audit_divergences"] == 0, scheme


@pytest.mark.slow
@pytest.mark.fuzz
class TestAcceptanceCampaign:
    def test_10k_campaign_reproduces_the_committed_summaries(self, entry):
        report = run_fleet(
            entry["request_budget"],
            schemes=tuple(entry["schemes"]),
            base_seed=entry["base_seed"],
            slice_requests=entry["slice_requests"],
            config=TrafficConfig.from_json(entry["config"]),
            jobs=2,  # sharded, exactly as CI drives it
        )
        assert report.lost_slices == 0
        assert report.audit_divergences == []
        assert report.total_requests >= 4 * 10_000 - 4 * 10  # leak slack
        for scheme_report in report.reports:
            produced = json.loads(json.dumps(scheme_report.summary()))
            assert produced == entry["expected"][scheme_report.scheme], (
                f"{scheme_report.scheme} diverged from the corpus"
            )
