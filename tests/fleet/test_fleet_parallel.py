"""Differential coverage: the fleet report is jobs- and cache-invariant.

The contract inherited from the PR 5 executor: for a given seed the
merged campaign report is *bit-identical* whether slices run serially,
across a process pool of any width, from warm spawn images, or from
cold boots — and a worker lost mid-campaign surfaces as typed data,
never as silently missing requests.

``jobs`` is passed straight to :func:`run_fleet` (not through the CLI's
``resolve_jobs``) so the pool is exercised even on single-core CI
runners.
"""

import json
import os
import signal

import pytest

from repro.core.deploy import SCHEMES
from repro.fleet import campaign as campaign_module
from repro.fleet.campaign import run_fleet
from repro.fleet.traffic import TrafficConfig
from repro.parallel.snapcache import reset_image_cache


def fingerprint(report):
    return json.dumps(report.to_json(), sort_keys=True)


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_pool_report_is_bit_identical_to_serial(self, jobs):
        serial = run_fleet(400, schemes=("pssp",), slice_requests=100)
        pooled = run_fleet(
            400, schemes=("pssp",), slice_requests=100, jobs=jobs
        )
        assert fingerprint(pooled) == fingerprint(serial)

    def test_multi_scheme_campaign_is_jobs_invariant(self):
        kwargs = dict(schemes=("ssp", "pssp"), slice_requests=100)
        serial = run_fleet(200, **kwargs)
        pooled = run_fleet(200, jobs=2, **kwargs)
        assert fingerprint(pooled) == fingerprint(serial)
        assert pooled.lost_slices == 0
        assert pooled.audit_divergences == []

    def test_pool_absorbs_worker_telemetry(self):
        from repro import telemetry

        before = telemetry.snapshot()
        report = run_fleet(
            200, schemes=("pssp",), slice_requests=100, jobs=2
        )
        delta = telemetry.delta(before)
        # The workers' counter deltas were folded back into this
        # process's registry, so the plane sees the whole campaign.
        assert delta.get("fleet_requests_total") == report.total_requests


# Module-level killer workers: the pool pickles submitted functions by
# reference, so they must live at import scope.  The seed to die on
# rides in through the (pickled) config dict, not a closure.

_REAL_FLEET_WORKER = campaign_module._fleet_shard_worker


def _fleet_killer_always(config, seeds, attempt):
    if seeds[0] == config["_poison_seed"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_FLEET_WORKER(config, seeds, attempt)


def _fleet_killer_once(config, seeds, attempt):
    if attempt == 1 and seeds[0] == config["_poison_seed"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_FLEET_WORKER(config, seeds, attempt)


def _poison(monkeypatch, seed):
    """Inject a poison seed into the shard config run_fleet submits."""
    from repro import parallel

    real_run_shards = parallel.run_shards

    def poisoned_run_shards(worker, config, shards, **kwargs):
        return real_run_shards(
            worker, dict(config, _poison_seed=seed), shards, **kwargs
        )

    monkeypatch.setattr("repro.parallel.run_shards", poisoned_run_shards)


class TestWorkerLoss:
    def test_lost_shard_surfaces_as_lost_slices(self, monkeypatch):
        monkeypatch.setattr(
            campaign_module, "_fleet_shard_worker", _fleet_killer_always
        )
        _poison(monkeypatch, 20180625)
        report = run_fleet(
            300, schemes=("pssp",), slice_requests=100, jobs=2
        )
        scheme = report.reports[0]
        # The poisoned shard's slices are listed as lost, never
        # silently missing from the request totals.
        assert 20180625 in scheme.lost
        assert len(scheme.slices) + len(scheme.lost) == 3
        assert report.lost_slices == len(scheme.lost)
        assert "LOST" in report.render()

    def test_one_crash_is_retried_and_the_payload_is_unchanged(
        self, monkeypatch
    ):
        serial = run_fleet(300, schemes=("pssp",), slice_requests=100)
        monkeypatch.setattr(
            campaign_module, "_fleet_shard_worker", _fleet_killer_once
        )
        _poison(monkeypatch, 20180625)
        report = run_fleet(
            300, schemes=("pssp",), slice_requests=100, jobs=2
        )
        assert report.lost_slices == 0
        # The retry is visible in the report's health section...
        scheme = report.reports[0]
        assert scheme.slices_retried > 0
        assert any(
            attempts == 2 for attempts in scheme.shard_attempts.values()
        )
        assert scheme.campaign_divergences == []
        # ...but the measured payload is bit-identical to serial.
        assert _scrub_retry_health(report) == _scrub_retry_health(serial)


def _scrub_retry_health(report):
    """Fingerprint minus the retry-health fields (attempt bookkeeping
    legitimately differs between a clean run and a retried one)."""
    data = report.to_json()
    for scheme in data["reports"]:
        scheme.pop("slices_retried", None)
        scheme.pop("shard_attempts", None)
        scheme.get("supervision", {}).pop("slices_retried", None)
    return json.dumps(data, sort_keys=True)


class TestWarmVersusCold:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_warm_image_and_cold_boot_reports_are_bit_identical(
        self, scheme, monkeypatch
    ):
        config = TrafficConfig(brute_trial_cap=40)
        kwargs = dict(
            schemes=(scheme,), slice_requests=40, config=config
        )
        reset_image_cache()
        warm = run_fleet(80, **kwargs)  # second slice hits the cache
        monkeypatch.setenv("REPRO_SNAPSHOT_CACHE", "0")
        reset_image_cache()
        try:
            cold = run_fleet(80, **kwargs)
        finally:
            monkeypatch.undo()
            reset_image_cache()
        assert fingerprint(cold) == fingerprint(warm)
        assert warm.audit_divergences == []
