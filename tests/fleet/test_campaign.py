"""The campaign classifier: every report number proved from counters.

This is the `test`-archetype heart of the fleet plane — the report is
only trusted because each of its fields is re-derived here from the
telemetry deltas the campaign produced, and because the built-in audit
is itself shown to catch fabricated numbers.
"""

import json

import pytest

from repro import telemetry
from repro.fleet.campaign import (
    DEFAULT_FLEET_SCHEMES,
    FleetReport,
    FleetSchemeReport,
    FleetSlice,
    LatencyLedger,
    _audit_slice,
    _slice_budget,
    run_fleet,
    run_fleet_slice,
)
from repro.fleet.server import LATENCY_BUCKETS_CYCLES, FleetServer
from repro.fleet.traffic import TrafficConfig


class TestEveryNumberFromCounters:
    """The report's numbers equal the counter deltas, field by field."""

    @pytest.mark.parametrize("scheme", ["ssp", "pssp", "pssp-owf"])
    def test_slice_bookkeeping_equals_telemetry_deltas(self, scheme):
        before = telemetry.snapshot()
        record = run_fleet_slice(
            scheme, 20180625, request_budget=400, audit=False
        )
        delta = telemetry.delta(before)
        assert record.requests == delta.get("fleet_requests_total", 0)
        assert record.crashes == delta.get("fleet_request_crashes_total", 0)
        assert record.detections == delta.get(
            "canary_smashes_detected_total", 0
        )
        # Worker-per-connection: the kernel forked once per worker and
        # nothing else during the slice.
        assert delta.get("fleet_workers_forked_total", 0) == delta.get(
            "kernel_forks_total", 0
        )
        histogram = delta["fleet_request_cycles"]
        assert histogram["count"] == record.requests
        assert sum(record.latency) == record.requests
        assert record.benign_requests + record.attack_requests \
            == record.requests

    def test_builtin_audit_passes_on_an_honest_slice(self):
        record = run_fleet_slice("pssp", 20180625, request_budget=400)
        assert record.audit_divergences == []

    def test_audit_catches_fabricated_numbers(self):
        server = FleetServer.boot("pssp", 3)
        record = FleetSlice(seed=3, request_budget=10)
        record.requests = 10  # fabricated: no counters ever moved
        _audit_slice(record, server, {})
        assert any(
            "fleet_requests_total" in line
            for line in record.audit_divergences
        )
        assert any("latency ledger" in line
                   for line in record.audit_divergences)


class TestSchemeSemantics:
    """The paper's table, reproduced by the service workload."""

    def test_static_canaries_fall_to_brute_force(self):
        record = run_fleet_slice("ssp", 20180625, request_budget=2000)
        assert record.breaches_by_kind["brute"] >= 1

    @pytest.mark.parametrize("scheme", ["pssp", "pssp-nt"])
    def test_fork_rerandomization_stops_brute_not_leak(self, scheme):
        record = run_fleet_slice(scheme, 20180625, request_budget=2000)
        assert record.breaches_by_kind["brute"] == 0
        assert record.breaches_by_kind["leak"] >= 1

    def test_owf_binding_stops_both(self):
        record = run_fleet_slice("pssp-owf", 20180625, request_budget=2000)
        assert record.breaches == 0
        assert record.detections > 0

    def test_detection_happens_and_is_indexed(self):
        record = run_fleet_slice("pssp", 20180625, request_budget=400)
        assert record.first_detection_request is not None
        assert 1 <= record.first_detection_request <= record.requests


class TestLatencyLedger:
    def test_observe_merge_percentile(self):
        ledger = LatencyLedger()
        for cycles in (100.0, 115.0, 115.0, 300.0):
            ledger.observe(cycles)
        other = LatencyLedger()
        other.observe(10_000.0)  # overflow bucket
        ledger.merge(other)
        assert ledger.total == 5
        assert ledger.percentile(0.5) == 120.0
        assert ledger.percentile(0.95) is None  # in the +Inf bucket
        assert LatencyLedger().percentile(0.5) is None

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            LatencyLedger([0] * 3)

    def test_ledger_aliases_the_slice_list(self):
        record = FleetSlice(seed=1, request_budget=1)
        LatencyLedger(record.latency).observe(1.0)
        assert sum(record.latency) == 1


class TestReports:
    def _slice(self, seed, requests, first=None, detections=0):
        record = FleetSlice(seed=seed, request_budget=requests)
        record.requests = requests
        record.attack_requests = requests
        record.detections = detections
        record.first_detection_request = first
        record.cycles = 120.0 * requests
        LatencyLedger(record.latency).observe(115.0)
        return record

    def test_time_to_detection_spans_slices(self):
        report = FleetSchemeReport(
            scheme="pssp", base_seed=0, request_budget=30,
            slice_requests=10,
            slices=[
                self._slice(0, 10),
                self._slice(1, 10, first=3, detections=1),
                self._slice(2, 10, first=1, detections=1),
            ],
        )
        # 10 requests of slice 0, then the 3rd request of slice 1.
        assert report.time_to_detection == 13
        assert report.detections == 2
        assert report.detection_rate == pytest.approx(2 / 30)

    def test_no_detection_means_no_ttd(self):
        report = FleetSchemeReport(
            scheme="ssp", base_seed=0, request_budget=10,
            slice_requests=10, slices=[self._slice(0, 10)],
        )
        assert report.time_to_detection is None
        assert report.summary()["time_to_detection"] is None

    def test_slice_json_roundtrip_is_exact(self):
        record = run_fleet_slice("pssp", 20180625, request_budget=300)
        data = json.loads(json.dumps(record.to_json()))
        assert FleetSlice.from_json(data).to_json() == record.to_json()

    def test_report_json_roundtrip_is_exact(self):
        report = run_fleet(
            200, schemes=("ssp", "pssp"), slice_requests=100
        )
        blob = json.dumps(report.to_json(), sort_keys=True)
        restored = FleetReport.from_json(json.loads(blob))
        assert json.dumps(restored.to_json(), sort_keys=True) == blob

    def test_render_mentions_every_scheme_and_the_audit(self):
        report = run_fleet(
            200, schemes=("ssp", "pssp"), slice_requests=100
        )
        text = report.render()
        assert "ssp" in text and "pssp" in text
        assert "AUDITED OK" in text

    def test_scheme_report_lookup(self):
        report = run_fleet(100, schemes=("pssp",), slice_requests=100)
        assert report.scheme_report("pssp").scheme == "pssp"
        with pytest.raises(KeyError):
            report.scheme_report("nope")


class TestRunFleet:
    def test_budget_is_respected_per_scheme(self):
        report = run_fleet(
            250, schemes=("pssp",), slice_requests=100
        )
        scheme = report.reports[0]
        assert len(scheme.slices) == 3
        assert [s.request_budget for s in scheme.slices] == [100, 100, 50]
        # A leak session needs 2 requests, so a slice may stop one
        # request short of its budget — never over it.
        assert 250 - 3 <= scheme.requests <= 250
        assert report.total_requests == scheme.requests

    def test_default_schemes_are_the_comparison_set(self):
        assert DEFAULT_FLEET_SCHEMES == ("ssp", "pssp", "pssp-nt", "pssp-owf")

    def test_bad_budgets_are_typed_errors(self):
        with pytest.raises(ValueError):
            run_fleet(0)
        with pytest.raises(ValueError):
            run_fleet(10, slice_requests=0)

    def test_slice_budget_partitions_exactly(self):
        budgets = [_slice_budget(250, 100, i) for i in range(3)]
        assert budgets == [100, 100, 50]
        assert sum(budgets) == 250

    def test_traffic_config_shapes_the_mix(self):
        config = TrafficConfig(attack_numerator=0, attack_denominator=2)
        record = run_fleet_slice(
            "pssp", 20180625, config=config, request_budget=120
        )
        assert record.attack_requests == 0
        assert record.detections == 0
        assert record.crashes == 0
        assert record.benign_requests == 120
