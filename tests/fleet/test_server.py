"""The accept-loop server: every request ticks the counter plane.

These are the unit-level "prove it from counters" tests: each
bookkeeping field on :class:`FleetServer` must move in lockstep with
its telemetry instrument, because the campaign audit (and therefore the
whole report) rests on that equivalence.
"""

import pytest

from repro import telemetry
from repro.attacks.payloads import PayloadBuilder, frame_map
from repro.fleet.server import FLEET_BUFFER_SIZE, FleetServer


@pytest.fixture()
def server():
    return FleetServer.boot("pssp", 424242)


@pytest.fixture()
def builder(server):
    return PayloadBuilder(frame_map(server.binary, "handler"))


class TestHandleRequest:
    def test_benign_request_served_cleanly(self, server, builder):
        before = telemetry.snapshot()
        response = server.handle_request(builder.benign(24))
        delta = telemetry.delta(before)
        assert not response.crashed
        assert not response.smashed
        assert response.cycles > 0
        assert server.requests_served == 1
        assert server.crashes == 0
        assert delta.get("fleet_requests_total") == 1
        assert delta.get("fleet_workers_forked_total") == 1
        assert delta.get("kernel_forks_total") == 1
        # The counter may pre-exist (any earlier test that crashed a
        # worker registers it), so check the delta, not membership.
        assert delta.get("fleet_request_crashes_total", 0) == 0

    def test_smash_is_detected_and_counted(self, server, builder):
        before = telemetry.snapshot()
        response = server.handle_request(builder.smash())
        delta = telemetry.delta(before)
        assert response.crashed and response.smashed
        assert server.crashes == 1
        assert server.smashes_observed == 1
        assert delta.get("fleet_request_crashes_total") == 1
        assert delta.get("canary_smashes_detected_total") == 1

    def test_parent_survives_crashed_workers(self, server, builder):
        # The §II-B scenario: workers die, the accept loop lives on.
        server.handle_request(builder.smash())
        response = server.handle_request(builder.benign(8))
        assert not response.crashed
        assert server.requests_served == 2
        assert server.parent.pid in server.kernel.processes

    def test_each_request_gets_a_fresh_worker(self, server, builder):
        for _ in range(3):
            server.handle_request(builder.benign(4))
        assert server.workers_forked == 3
        # Workers were reaped: only the parent remains.
        assert list(server.kernel.processes) == [server.parent.pid]

    def test_latency_histogram_counts_every_request(self, server, builder):
        before = telemetry.snapshot()
        for length in (4, 12, 40):
            server.handle_request(builder.benign(length))
        histogram = telemetry.delta(before)["fleet_request_cycles"]
        assert histogram["count"] == 3
        assert sum(histogram["counts"]) == 3

    def test_on_response_hook_fires_per_request(self, server, builder):
        seen = []
        server.on_response = seen.append
        server.handle_request(builder.benign(4))
        server.handle_request(builder.smash())
        assert len(seen) == 2
        assert [r.smashed for r in seen] == [False, True]


class TestWorkerCheckout:
    def test_checked_out_worker_requests_are_accounted(self, server):
        before = telemetry.snapshot()
        worker = server.fork_worker()
        response = server.account_worker_request(False, False, 120.0)
        server.release_worker(worker)
        delta = telemetry.delta(before)
        assert not response.crashed
        assert server.requests_served == 1
        assert server.workers_forked == 1
        assert delta.get("fleet_requests_total") == 1
        assert delta.get("fleet_workers_forked_total") == 1
        assert list(server.kernel.processes) == [server.parent.pid]

    def test_boot_is_seed_deterministic(self):
        one = FleetServer.boot("pssp", 7)
        two = FleetServer.boot("pssp", 7)
        builder = PayloadBuilder(frame_map(one.binary, "handler"))
        first = one.handle_request(builder.smash())
        second = two.handle_request(builder.smash())
        assert (first.crashed, first.smashed, first.cycles) == (
            second.crashed, second.smashed, second.cycles
        )


def test_fleet_buffer_size_matches_the_built_frame():
    # The payload builder enforces the real invariant: a benign payload
    # of FLEET_BUFFER_SIZE - 1 fits, FLEET_BUFFER_SIZE does not — so
    # the traffic generator's payload bound matches the built binary.
    server = FleetServer.boot("ssp", 1)
    builder = PayloadBuilder(frame_map(server.binary, "handler"))
    assert len(builder.benign(FLEET_BUFFER_SIZE - 1)) == FLEET_BUFFER_SIZE - 1
    with pytest.raises(ValueError):
        builder.benign(FLEET_BUFFER_SIZE)
