"""The fleet supervision plane: deadlines, breakers, healing, chaos.

Everything here exercises the ISSUE 8 contract: supervision decisions
derive only from seeded simulated state, so supervised (and faulted)
runs replay bit-identically, shard bit-identically, and audit cleanly
against the counter plane.
"""

import json

import pytest

from repro.faults.policy import SELFTEST_DRAWS
from repro.faults.schedule import (
    BOOT_TLS_WRITES,
    FaultEvent,
    FaultSchedule,
    generate_fleet_fault_schedule,
)
from repro.fleet import run_fleet
from repro.fleet.campaign import run_fleet_slice
from repro.fleet.server import FleetServer
from repro.fleet.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CrashLoopBreaker,
    FleetSupervisor,
    SupervisorConfig,
)
from repro.fleet.traffic import TrafficConfig

BENIGN = b"A" * 10


def _benign_cycles() -> float:
    """Cycle cost of one benign request on an unsupervised server."""
    server = FleetServer.boot("pssp", 1)
    response = server.handle_request(BENIGN)
    assert not response.crashed
    return response.cycles


class TestDeadline:
    def test_request_at_exactly_the_budget_survives(self):
        cycles = _benign_cycles()
        server = FleetServer.boot("pssp", 1)
        supervisor = FleetSupervisor(
            SupervisorConfig(deadline_cycles=cycles), seed=1
        ).attach(server)
        response = server.handle_request(BENIGN)
        # The deadline is a strict budget: cycles == limit is on time.
        assert response.outcome == "served"
        assert not response.crashed
        assert supervisor.deadline_reaps == 0

    def test_request_past_the_budget_is_reaped_as_typed_deadline(self):
        cycles = _benign_cycles()
        server = FleetServer.boot("pssp", 1)
        supervisor = FleetSupervisor(
            SupervisorConfig(deadline_cycles=cycles - 1.0), seed=1
        ).attach(server)
        response = server.handle_request(BENIGN)
        assert response.outcome == "deadline"
        assert response.crashed
        assert response.signal == "SIGXCPU"
        assert supervisor.deadline_reaps == 1

    def test_default_deadline_never_reaps_honest_traffic(self):
        record = run_fleet_slice(
            "pssp", 20180625, config=TrafficConfig(), request_budget=200
        )
        assert record.deadline_reaps == 0
        assert record.quarantined_requests == 0
        assert record.audit_divergences == []


class TestCrashLoopBreaker:
    def _breaker(self, **overrides):
        config = SupervisorConfig(
            crash_loop_threshold=overrides.pop("threshold", 4),
            backoff_base=overrides.pop("base", 8),
            backoff_cap=overrides.pop("cap", 64),
        )
        return CrashLoopBreaker(config, seed=42)

    def test_trips_only_on_k_consecutive_crashes(self):
        breaker = self._breaker(threshold=4)
        for _ in range(3):
            breaker.record_crash()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_success()  # a success resets the streak
        for _ in range(3):
            breaker.record_crash()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_crash()
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 1

    def test_open_window_quarantines_then_half_opens(self):
        breaker = self._breaker()
        for _ in range(4):
            breaker.record_crash()
        window = breaker.remaining
        assert window >= 8  # base window + seeded jitter
        for _ in range(window):
            assert breaker.quarantines_next() is True
        # Window spent: the next decision is the half-open probe.
        assert breaker.quarantines_next() is False
        assert breaker.state == BREAKER_HALF_OPEN

    def test_half_open_success_closes_crash_retrips_doubled(self):
        breaker = self._breaker()
        for _ in range(4):
            breaker.record_crash()
        first_window = breaker.remaining
        while breaker.quarantines_next():
            pass
        breaker.record_crash()  # the probe request crashed
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2
        assert breaker.remaining > first_window  # doubled base window
        while breaker.quarantines_next():
            pass
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.streak == 0

    def test_backoff_is_seed_deterministic(self):
        config = SupervisorConfig()
        windows = []
        for _ in range(2):
            breaker = CrashLoopBreaker(config, seed=7)
            for _ in range(config.crash_loop_threshold):
                breaker.record_crash()
            windows.append(breaker.remaining)
        assert windows[0] == windows[1]


class TestSelfHealing:
    def test_mid_traffic_stuck_drbg_heals_with_exact_replay(self):
        schedule = FaultSchedule(
            scheme="pssp-nt-hardened",
            events=[FaultEvent(
                "rdrand-stuck", at=SELFTEST_DRAWS + 16,
                count=600, value=0xDEADBEEF | 1,
            )],
        )
        record = run_fleet_slice(
            "pssp-nt-hardened", 7, config=TrafficConfig(),
            request_budget=200, fault_schedule=schedule,
        )
        # The entropy probe quarantined the device mid-traffic and the
        # supervisor restarted the parent from its boot image; the
        # architectural replay check found no divergence.
        assert record.parent_restarts >= 1
        assert record.audit_divergences == []

    def test_tear_storm_trips_the_breaker_fail_closed(self):
        schedule = FaultSchedule(
            scheme="pssp",
            events=[FaultEvent(
                "tls-torn", at=BOOT_TLS_WRITES, count=256,
            )],
        )
        record = run_fleet_slice(
            "pssp", 7, config=TrafficConfig(),
            request_budget=200, fault_schedule=schedule,
        )
        assert record.breaker_trips >= 1
        assert record.quarantined_requests > 0
        assert record.audit_divergences == []

    def test_quarantined_responses_never_read_as_breaches(self):
        server = FleetServer.boot("pssp", 1)
        supervisor = FleetSupervisor(seed=1).attach(server)
        response = supervisor.quarantine_response()
        # byte_by_byte treats any non-crash as a confirmed guess, so
        # the fail-closed response must present as a crash.
        assert response.crashed
        assert response.outcome == "quarantined"
        assert response.cycles == 0.0


class TestWindowStretch:
    def test_starved_prologues_stretch_the_rerand_window(self):
        schedule = FaultSchedule(
            scheme="pssp-nt-hardened",
            events=[FaultEvent(
                "rdrand-fail", at=SELFTEST_DRAWS, count=40,
            )],
        )
        record = run_fleet_slice(
            "pssp-nt-hardened", 7, config=TrafficConfig(),
            request_budget=200, fault_schedule=schedule,
        )
        assert record.faulted_requests > 0
        assert record.clean_requests > 0
        faulted_mean = record.faulted_cycles / record.faulted_requests
        clean_mean = record.clean_cycles / record.clean_requests
        # The guest retry loop burns real simulated cycles: starved
        # prologues measurably stretch the re-randomization window.
        assert faulted_mean > clean_mean

    def test_clean_slice_reports_no_supervision_activity(self):
        record = run_fleet_slice(
            "pssp", 20180625, config=TrafficConfig(), request_budget=200
        )
        assert record.faulted_requests == 0
        assert record.clean_requests == 0  # no plane: nothing attributed
        assert record.breaker_trips == 0
        assert record.parent_restarts == 0


class TestChaosDeterminism:
    KWARGS = dict(
        schemes=("pssp", "pssp-nt-hardened"), slice_requests=100, chaos=True
    )

    def _fingerprint(self, report):
        return json.dumps(report.to_json(), sort_keys=True)

    def test_chaos_campaign_is_jobs_invariant(self):
        serial = run_fleet(400, **self.KWARGS)
        pooled = run_fleet(400, jobs=2, **self.KWARGS)
        assert self._fingerprint(pooled) == self._fingerprint(serial)
        assert pooled.audit_divergences == []

    def test_chaos_campaign_replays_bit_identically(self):
        first = run_fleet(300, **self.KWARGS)
        second = run_fleet(300, **self.KWARGS)
        assert self._fingerprint(first) == self._fingerprint(second)

    def test_schedules_depend_only_on_their_key(self):
        one = generate_fleet_fault_schedule(1, 20180625, "pssp")
        two = generate_fleet_fault_schedule(1, 20180625, "pssp")
        assert one.description == two.description
        assert [vars(e) for e in one.events] == [vars(e) for e in two.events]
        # A different chaos seed draws an independent scenario stream.
        schedules = {
            generate_fleet_fault_schedule(seed, 20180625, "pssp").description
            for seed in range(8)
        }
        assert len(schedules) > 1

    def test_clean_slice_is_invariant_under_supervision(self):
        # The supervision layer is always on; a fault-free slice must
        # produce the exact numbers an unsupervised seed produced in
        # earlier releases (the committed corpus/bench stay valid).
        record = run_fleet_slice(
            "pssp", 20180625, config=TrafficConfig(), request_budget=200
        )
        chaos_free = run_fleet(
            200, schemes=("pssp",), slice_requests=200, base_seed=20180625
        )
        assert record.to_json() == chaos_free.reports[0].slices[0].to_json()
