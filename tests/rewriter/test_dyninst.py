"""Static-binary instrumentation: Dyninst-style hooks and new section."""

import pytest

from repro.binfmt.elf import STATIC, merge_binaries
from repro.compiler.codegen import compile_source
from repro.core.deploy import build, deploy
from repro.core.rerandomize import check_packed32
from repro.errors import RewriteError
from repro.isa.encoding import function_length
from repro.kernel.kernel import Kernel
from repro.libc.glibc_sim import build_static_glibc
from repro.rewriter.dyninst import instrument_static_binary

FORKING_VICTIM = """
int handler(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}
int main() {
    int pid;
    pid = fork();
    return pid == 0;
}
"""


def static_binary(source=FORKING_VICTIM, name="victim"):
    return merge_binaries(
        compile_source(source, protection="ssp", name=name, link_type=STATIC),
        build_static_glibc(),
        name=name,
    )


class TestInstrumentation:
    def test_requires_static_link(self):
        dynamic = compile_source(FORKING_VICTIM, protection="ssp")
        with pytest.raises(RewriteError):
            instrument_static_binary(dynamic)

    def test_requires_glibc_stubs(self):
        lone = compile_source(FORKING_VICTIM, protection="ssp",
                              link_type=STATIC)
        with pytest.raises(RewriteError):
            instrument_static_binary(lone)

    def test_new_section_functions_added(self):
        instrumented = instrument_static_binary(static_binary())
        for name in ("__pssp_fork", "__pssp_stack_chk_fail", "__pssp_setup"):
            assert instrumented.has_function(name)

    def test_hooks_preserve_original_byte_lengths(self):
        original = static_binary()
        instrumented = instrument_static_binary(original)
        for name in ("fork", "__stack_chk_fail"):
            assert function_length(
                instrumented.function(name).body
            ) == function_length(original.function(name).body)

    def test_hook_is_a_jmp(self):
        instrumented = instrument_static_binary(static_binary())
        hooked = instrumented.function("fork")
        assert hooked.body[0].op == "jmp"
        assert hooked.body[0].operands[0].name == "__pssp_fork"

    def test_setup_registered_as_constructor(self):
        instrumented = instrument_static_binary(static_binary())
        assert "__pssp_setup" in instrumented.constructors

    def test_code_expansion_positive_but_small(self):
        original = static_binary()
        instrumented = instrument_static_binary(original)
        growth = instrumented.total_size() - original.total_size()
        assert 0 < growth < 600  # the new section only


class TestRuntimeBehaviour:
    def _deploy(self, seed=31):
        kernel = Kernel(seed)
        binary = build(FORKING_VICTIM, "pssp-binary-static", name="victim")
        process, _ = deploy(kernel, binary, "pssp-binary-static")
        return kernel, process

    def test_constructor_initialises_shadow(self):
        _, process = self._deploy()
        assert check_packed32(process.tls.shadow_c0, process.tls.canary)

    def test_simulated_fork_refreshes_child_shadow(self):
        _, process = self._deploy()
        before = process.tls.shadow_c0
        result = process.run()  # main forks in simulated code
        assert result.state == "exited"
        # Parent shadow untouched; the child refreshed its own (observable
        # through the recorded child results all exiting cleanly).
        assert process.tls.shadow_c0 == before
        assert all(r.state == "exited" for _, r in process.child_results)

    def test_overflow_detected(self):
        _, process = self._deploy()
        process.feed_stdin(b"z" * 128)
        assert process.call("handler", (128,)).smashed

    def test_benign_passes(self):
        _, process = self._deploy()
        process.feed_stdin(b"z" * 8)
        assert process.call("handler", (8,)).state == "exited"
