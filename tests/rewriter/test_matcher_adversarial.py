"""Adversarial matcher inputs: SSP look-alikes that must NOT match.

A real rewriter that mis-identifies a pattern corrupts working binaries;
these hand-written sequences are near-misses of the SSP idioms.
"""

from repro.isa.assembler import assemble_one
from repro.rewriter.matcher import find_epilogues, find_prologues


class TestPrologueNearMisses:
    def test_wrong_tls_offset(self):
        function = assemble_one("""
f:
    mov rax, fs:[0x30]
    mov [rbp-8], rax
    ret
""")
        assert find_prologues(function) == []

    def test_store_of_a_different_register(self):
        function = assemble_one("""
f:
    mov rax, fs:[0x28]
    mov [rbp-8], rcx
    ret
""")
        assert find_prologues(function) == []

    def test_store_not_frame_relative(self):
        function = assemble_one("""
f:
    mov rax, fs:[0x28]
    mov [rcx-8], rax
    ret
""")
        assert find_prologues(function) == []

    def test_load_at_end_of_function(self):
        function = assemble_one("""
f:
    nop
    mov rax, fs:[0x28]
""")
        assert find_prologues(function) == []

    def test_genuine_pattern_with_intervening_gap(self):
        # The store must directly follow the load (the compiler idiom).
        function = assemble_one("""
f:
    mov rax, fs:[0x28]
    nop
    mov [rbp-8], rax
    ret
""")
        assert find_prologues(function) == []


class TestEpilogueNearMisses:
    def test_xor_against_wrong_tls_slot(self):
        function = assemble_one("""
f:
    mov rdx, [rbp-8]
    xor rdx, fs:[0x2a8]
    je .ok
    call __stack_chk_fail
.ok:
    ret
""")
        assert find_epilogues(function) == []

    def test_xor_into_a_different_register(self):
        function = assemble_one("""
f:
    mov rdx, [rbp-8]
    xor rcx, fs:[0x28]
    je .ok
    call __stack_chk_fail
.ok:
    ret
""")
        assert find_epilogues(function) == []

    def test_call_to_other_symbol(self):
        function = assemble_one("""
f:
    mov rdx, [rbp-8]
    xor rdx, fs:[0x28]
    je .ok
    call abort
.ok:
    ret
""")
        assert find_epilogues(function) == []

    def test_jne_instead_of_je(self):
        function = assemble_one("""
f:
    mov rdx, [rbp-8]
    xor rdx, fs:[0x28]
    jne .ok
    call __stack_chk_fail
.ok:
    ret
""")
        assert find_epilogues(function) == []

    def test_genuine_handwritten_pattern_matches(self):
        # Sanity: the matcher is shape-based, so hand-written SSP (no
        # compiler notes at all) must still be found.
        function = assemble_one("""
f:
    push rbp
    mov rbp, rsp
    mov rax, fs:[0x28]
    mov [rbp-8], rax
    mov rdx, [rbp-8]
    xor rdx, fs:[0x28]
    je .ok
    call __stack_chk_fail
.ok:
    leave
    ret
""")
        assert len(find_prologues(function)) == 1
        assert len(find_epilogues(function)) == 1
