"""Layout-preserving rewriting: bytes, semantics, security."""

import pytest

from repro.binfmt.elf import Binary
from repro.compiler.codegen import compile_source
from repro.core.deploy import build, deploy
from repro.errors import RewriteError
from repro.isa.encoding import function_length
from repro.kernel.kernel import Kernel
from repro.machine.tls import SHADOW_C0_OFFSET
from repro.rewriter.rewrite import instrument_binary, rewrite_function

VICTIM = """
int handler(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}
int helper(int x) {
    return x * 2;
}
int main() { return 0; }
"""


@pytest.fixture
def ssp_binary():
    return compile_source(VICTIM, protection="ssp", name="victim")


class TestByteLayout:
    def test_function_byte_length_preserved(self, ssp_binary):
        original = ssp_binary.function("handler")
        rewritten = rewrite_function(original)
        assert function_length(rewritten.body) == function_length(original.body)

    def test_whole_binary_size_unchanged(self, ssp_binary):
        rewritten = instrument_binary(ssp_binary)
        assert rewritten.total_size() == ssp_binary.total_size()

    def test_prologue_retargeted_to_shadow(self, ssp_binary):
        rewritten = rewrite_function(ssp_binary.function("handler"))
        loads = [
            i for i in rewritten.body
            if i.op == "mov" and i.note == "pssp-binary-prologue"
        ]
        assert len(loads) == 1
        assert loads[0].operands[1].disp == SHADOW_C0_OFFSET

    def test_epilogue_passes_canary_in_rdi(self, ssp_binary):
        rewritten = rewrite_function(ssp_binary.function("handler"))
        notes = [i.note for i in rewritten.body]
        assert notes.count("pssp-binary-epilogue") >= 7

    def test_unprotected_function_untouched(self, ssp_binary):
        rewritten = instrument_binary(ssp_binary)
        original_helper = ssp_binary.function("helper")
        assert rewritten.function("helper").body == original_helper.body

    def test_rewriting_none_build_fails(self):
        binary = compile_source(VICTIM, protection="none")
        with pytest.raises(RewriteError):
            rewrite_function(binary.function("handler"))

    def test_protection_marker(self, ssp_binary):
        rewritten = instrument_binary(ssp_binary)
        assert rewritten.protection == "pssp-binary"
        assert rewritten.function("handler").protected == "pssp-binary"


class TestSemantics:
    def _deploy(self, seed=21):
        kernel = Kernel(seed)
        binary = build(VICTIM, "pssp-binary", name="victim")
        process, _ = deploy(kernel, binary, "pssp-binary")
        return process

    def test_benign_request_survives(self):
        process = self._deploy()
        process.feed_stdin(b"x" * 16)
        assert process.call("handler", (16,)).state == "exited"

    def test_overflow_detected_via_fortify(self):
        process = self._deploy()
        process.feed_stdin(b"x" * 128)
        result = process.call("handler", (128,))
        assert result.smashed
        assert "fortify" in str(result.crash)

    def test_fork_rerandomizes_packed_canary(self):
        kernel = Kernel(23)
        binary = build(VICTIM, "pssp-binary", name="victim")
        parent, _ = deploy(kernel, binary, "pssp-binary")
        packed = {kernel.fork(parent).tls.shadow_c0 for _ in range(4)}
        assert len(packed) == 4

    def test_plain_ssp_caller_still_aborts_through_stub(self):
        """An *un-rewritten* SSP binary running with the interposed
        __stack_chk_fail must still die on a genuine smash (§V-C's
        compatibility requirement)."""
        kernel = Kernel(29)
        binary = build(VICTIM, "ssp", name="victim")
        # Run it under the pssp-binary runtime: preload interposes the stub.
        process, _ = deploy(kernel, binary, "pssp-binary")
        process.feed_stdin(b"y" * 128)
        result = process.call("handler", (128,))
        assert result.smashed
