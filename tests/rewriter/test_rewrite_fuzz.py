"""Rewriter fuzzing: layout preservation and semantic equivalence over
generated programs.

For a spread of synthetic programs (varying function counts, buffer
sizes, call densities), instrument the SSP build and require:

* byte-identical total size (the Table II invariant),
* identical checksums between the SSP build run natively and the
  rewritten build run under the binary runtime,
* identical overflow detection behaviour.
"""

import pytest

from repro.compiler.codegen import compile_source
from repro.core.deploy import build, deploy
from repro.crypto.random import EntropySource
from repro.kernel.kernel import Kernel
from repro.rewriter.rewrite import instrument_binary
from repro.workloads.generator import GeneratorConfig, generate_program

CONFIGS = [
    (GeneratorConfig(functions=2, buffer_bytes=16, outer_iterations=6,
                     inner_iterations=4), 11),
    (GeneratorConfig(functions=4, buffer_bytes=32, outer_iterations=5,
                     inner_iterations=3), 12),
    (GeneratorConfig(functions=3, buffer_bytes=64, outer_iterations=8,
                     inner_iterations=2), 13),
    (GeneratorConfig(functions=5, buffer_bytes=24, outer_iterations=4,
                     inner_iterations=5), 14),
    (GeneratorConfig(functions=2, buffer_bytes=0, outer_iterations=6,
                     inner_iterations=4), 15),  # nothing to rewrite
]


@pytest.mark.parametrize("config,seed", CONFIGS,
                         ids=[f"cfg{i}" for i in range(len(CONFIGS))])
class TestRewriterFuzz:
    def _source(self, config, seed):
        return generate_program(config, EntropySource(seed))

    def test_size_preserved(self, config, seed):
        source = self._source(config, seed)
        native = compile_source(source, protection="ssp", name="fuzz")
        rewritten = instrument_binary(native)
        assert rewritten.total_size() == native.total_size()

    def test_checksum_preserved(self, config, seed):
        source = self._source(config, seed)
        kernel = Kernel(seed)
        native_binary = build(source, "ssp", name="fuzz")
        native, _ = deploy(kernel, native_binary, "ssp")
        reference = native.run().exit_status

        rewritten_binary = build(source, "pssp-binary", name="fuzz")
        rewritten, _ = deploy(kernel, rewritten_binary, "pssp-binary")
        assert rewritten.run().exit_status == reference

    def test_protected_functions_rewritten_only_when_present(self, config, seed):
        source = self._source(config, seed)
        native = compile_source(source, protection="ssp", name="fuzz")
        rewritten = instrument_binary(native)
        for name, function in rewritten.functions.items():
            original = native.function(name)
            if original.protected:
                assert function.protected == "pssp-binary"
            else:
                assert function.body == original.body
