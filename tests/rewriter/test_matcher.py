"""SSP pattern matching on compiled binaries."""

from repro.compiler.codegen import compile_source
from repro.rewriter.matcher import (
    find_epilogues,
    find_prologues,
    is_ssp_protected,
)

VICTIM = """
int handler(int n) {
    char buf[32];
    read(0, buf, n);
    return 0;
}
int helper(int x) {
    return x * 2;
}
"""


class TestPrologueMatching:
    def test_finds_ssp_prologue(self):
        binary = compile_source(VICTIM, protection="ssp")
        matches = find_prologues(binary.function("handler"))
        assert len(matches) == 1
        assert matches[0].canary_slot == 8

    def test_store_follows_load(self):
        binary = compile_source(VICTIM, protection="ssp")
        match = find_prologues(binary.function("handler"))[0]
        assert match.store_index == match.index + 1

    def test_unprotected_function_has_no_match(self):
        binary = compile_source(VICTIM, protection="ssp")
        assert find_prologues(binary.function("helper")) == []

    def test_none_build_has_no_match(self):
        binary = compile_source(VICTIM, protection="none")
        assert find_prologues(binary.function("handler")) == []


class TestEpilogueMatching:
    def test_finds_ssp_epilogue(self):
        binary = compile_source(VICTIM, protection="ssp")
        matches = find_epilogues(binary.function("handler"))
        assert len(matches) == 1
        match = matches[0]
        assert match.canary_slot == 8
        assert match.ok_label.startswith(".ssp_ok")

    def test_window_is_contiguous(self):
        binary = compile_source(VICTIM, protection="ssp")
        match = find_epilogues(binary.function("handler"))[0]
        assert (match.xor_index, match.je_index, match.call_index) == (
            match.load_index + 1,
            match.load_index + 2,
            match.load_index + 3,
        )

    def test_pssp_epilogue_not_matched_as_ssp(self):
        # P-SSP's check xors two frame slots before the TLS xor — a
        # different shape the SSP matcher must not claim.
        binary = compile_source(VICTIM, protection="pssp")
        assert find_epilogues(binary.function("handler")) == []


class TestIsProtected:
    def test_protected_detection(self):
        binary = compile_source(VICTIM, protection="ssp")
        assert is_ssp_protected(binary.function("handler"))
        assert not is_ssp_protected(binary.function("helper"))
