"""Rewriter robustness: unusual-but-legal inputs."""

from repro.binfmt.serialize import dumps, loads
from repro.compiler.codegen import compile_source
from repro.core.deploy import deploy
from repro.kernel.kernel import Kernel
from repro.rewriter.rewrite import instrument_binary

VICTIM = """
int handler(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""

MULTI_EXIT = """
int handler(int n) {
    char buf[32];
    read(0, buf, 4096);
    if (n > 100) { return 1; }
    if (n > 50) { return 2; }
    return 3;
}
int main() { return 0; }
"""


class TestRobustness:
    def test_double_instrumentation_is_a_no_op(self):
        # A second pass finds no SSP idioms (they were all rewritten) and
        # must leave the binary untouched rather than corrupt it.
        native = compile_source(VICTIM, protection="ssp", name="v")
        once = instrument_binary(native)
        twice = instrument_binary(once)
        assert twice.function("handler").body == once.function("handler").body
        assert twice.total_size() == once.total_size()

    def test_optimized_ssp_build_still_rewritable(self):
        native = compile_source(VICTIM, protection="ssp", name="v",
                                optimize=True)
        rewritten = instrument_binary(native)
        assert rewritten.total_size() == native.total_size()
        kernel = Kernel(5)
        process, _ = deploy(kernel, rewritten, "pssp-binary")
        process.feed_stdin(b"A" * 120)
        assert process.call("handler", (120,)).smashed

    def test_multiple_return_sites_single_epilogue(self):
        # Our codegen funnels every return through one epilogue; the
        # rewriter must handle exactly the sites that exist, no more.
        native = compile_source(MULTI_EXIT, protection="ssp", name="v")
        rewritten = instrument_binary(native)
        calls = [
            i for i in rewritten.function("handler").body
            if i.op == "call" and i.note == "pssp-binary-epilogue"
        ]
        assert len(calls) == 2  # check-call + failure-call, one site
        kernel = Kernel(6)
        process, _ = deploy(kernel, rewritten, "pssp-binary")
        process.feed_stdin(b"ok")
        result = process.call("handler", (2,))
        assert result.state == "exited"
        assert result.exit_status == 3

    def test_rewrite_of_serialized_roundtrip(self):
        native = compile_source(VICTIM, protection="ssp", name="v")
        revived = loads(dumps(native))
        rewritten = instrument_binary(revived)
        assert rewritten.total_size() == native.total_size()

    def test_benign_paths_through_every_exit(self):
        native = compile_source(MULTI_EXIT, protection="ssp", name="v")
        rewritten = instrument_binary(native)
        kernel = Kernel(7)
        for n, expected in ((120, 1), (70, 2), (5, 3)):
            process, _ = deploy(kernel, rewritten, "pssp-binary")
            process.feed_stdin(b"x" * 4)
            assert process.call("handler", (n,)).exit_status == expected
