"""libc edge cases not covered by the main builtin tests."""

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel


def run(source, stdin=b"", scheme="none", seed=9):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="t")
    process, _ = deploy(kernel, binary, scheme)
    process.feed_stdin(stdin)
    result = process.run()
    return result, process


class TestPrintfEdgeCases:
    def test_unsigned_format(self):
        _, process = run('int main() { printf("%u", 7); return 0; }')
        assert process.stdout_text() == "7"

    def test_unknown_specifier_passes_through(self):
        _, process = run('int main() { printf("%q"); return 0; }')
        assert process.stdout_text() == "%q"

    def test_trailing_percent(self):
        _, process = run('int main() { printf("x%%"); return 0; }')
        assert process.stdout_text() == "x%"

    def test_more_specifiers_than_args_prints_zeroes(self):
        _, process = run('int main() { printf("%d %d %d %d %d %d %d"); return 0; }')
        # Registers beyond the format hold whatever they hold; the last
        # specifier past the six-register window formats as 0.
        assert process.stdout_text().count(" ") == 6

    def test_write_to_stderr_fd(self):
        result, process = run("""
int main() {
    char msg[8];
    strcpy(msg, "err");
    return write(2, msg, 3);
}
""")
        assert result.exit_status == 3
        assert b"err" in process.stdout  # both fds share the capture

    def test_write_to_bad_fd_fails(self):
        result, _ = run("""
int main() {
    char msg[8];
    msg[0] = 'x';
    return write(7, msg, 1) == 0 - 1;
}
""")
        assert result.exit_status == 1


class TestMemoryEdgeCases:
    def test_memmove_reads_before_writing(self):
        result, process = run("""
int main() {
    char buf[32];
    strcpy(buf, "abcdef");
    memmove(buf + 2, buf, 6);
    buf[8] = 0;
    puts(buf);
    return 0;
}
""")
        assert process.stdout_text() == "ababcdef\n"

    def test_zero_length_operations(self):
        result, _ = run("""
int main() {
    char a[8];
    char b[8];
    a[0] = 1;
    memcpy(a, b, 0);
    memset(a, 9, 0);
    return a[0] + memcmp(a, b, 0);
}
""")
        assert result.exit_status == 1

    def test_realloc_preserves_prefix(self):
        result, _ = run("""
int main() {
    char *p;
    char *q;
    p = malloc(8);
    strcpy(p, "keep");
    q = realloc(p, 64);
    return strcmp(q, "keep");
}
""")
        assert result.exit_status == 0

    def test_strncpy_truncates_without_nul(self):
        result, _ = run("""
int main() {
    char buf[8];
    buf[3] = 'Z';
    strncpy(buf, "abcdef", 3);
    return buf[3];
}
""")
        assert result.exit_status == ord("Z")


class TestProcessEdgeCases:
    def test_waitpid_returns_child_pid(self):
        result, _ = run("""
int main() {
    int pid; int status; int got;
    pid = fork();
    if (pid == 0) { return 3; }
    got = waitpid(pid, &status, 0);
    return got == pid;
}
""")
        assert result.exit_status == 1

    def test_waitpid_without_children_fails(self):
        result, _ = run("""
int main() {
    return waitpid(12345, 0, 0) == 0 - 1;
}
""")
        assert result.exit_status == 1

    def test_time_monotone(self):
        result, _ = run("""
int main() {
    int a; int i; int b;
    a = time(0);
    for (i = 0; i < 10000; i = i + 1) { }
    b = time(0);
    return b >= a;
}
""")
        assert result.exit_status == 1

    def test_gets_empty_line(self):
        result, _ = run("""
int main() {
    char buf[16];
    gets(buf);
    return strlen(buf);
}
""", stdin=b"\nrest")
        assert result.exit_status == 0
