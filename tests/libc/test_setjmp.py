"""setjmp/longjmp and the stack-unwinding compatibility experiment.

The paper's §III-D argues the linked-list schemes (DynaGuard, DCR) are
hard to keep correct under exception handling / stack unwinding, because
a non-local exit skips the epilogues that were supposed to pop their
per-frame bookkeeping.  P-SSP keeps no such state and sails through.
"""

import pytest

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

BASIC = """
int jumper(int env) {
    char pad[16];
    pad[0] = 1;
    longjmp(env, 7);
    return 99;
}
int main() {
    int env[8];
    int r;
    r = setjmp(env);
    if (r == 0) {
        jumper(env);
        return 50;
    }
    return r;
}
"""

#: setjmp in main; two protected frames get unwound by the longjmp; then
#: another protected call runs at the same stack depth the dead frames
#: occupied.
UNWIND_THEN_CALL = """
int helper(int env) {
    char pad[16];
    pad[0] = 1;
    longjmp(env, 7);
    return 0;
}
int work(int env) {
    char buf[16];
    buf[0] = 2;
    return helper(env);
}
int after(int x) {
    char buf2[16];
    buf2[0] = x;
    return buf2[0];
}
int main() {
    int env[8];
    int r;
    r = setjmp(env);
    if (r == 0) {
        work(env);
        return 99;
    }
    return after(r);
}
"""


def run(source, scheme, seed=61):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="t")
    process, _ = deploy(kernel, binary, scheme)
    return process.run(), process


class TestSetjmpBasics:
    def test_longjmp_returns_value_at_setjmp(self):
        result, _ = run(BASIC, "none")
        assert result.state == "exited"
        assert result.exit_status == 7

    def test_longjmp_zero_becomes_one(self):
        source = BASIC.replace("longjmp(env, 7)", "longjmp(env, 0)")
        result, _ = run(source, "none")
        assert result.exit_status == 1

    def test_longjmp_without_setjmp_faults(self):
        source = """
int main() {
    int env[8];
    longjmp(env, 1);
    return 0;
}
"""
        result, _ = run(source, "none")
        assert result.crashed
        assert result.signal == "SIGSEGV"

    def test_callee_saved_registers_restored(self):
        # r12/r13 hold the OWF key; a longjmp must not lose it.
        result, _ = run(BASIC, "pssp-owf")
        assert result.state == "exited"
        assert result.exit_status == 7


class TestUnwindingCompatibility:
    @pytest.mark.parametrize("scheme", ["none", "ssp", "pssp", "pssp-nt",
                                        "pssp-owf", "pssp-binary"])
    def test_stateless_schemes_survive_unwinding(self, scheme):
        """P-SSP and friends: no per-frame side state, no problem."""
        result, _ = run(UNWIND_THEN_CALL, scheme)
        assert result.state == "exited", f"{scheme}: {result.crash}"
        assert result.exit_status == 7

    def test_global_buffer_variant_also_breaks(self):
        """Reproduction finding: the §VII-C global-buffer variant keeps a
        per-call side-buffer count, so it inherits exactly the unwinding
        fragility the paper attributes to DynaGuard/DCR — the skipped
        epilogues leave the count high and a later epilogue pops a dead
        frame's C1 half, aborting a healthy process."""
        result, _ = run(UNWIND_THEN_CALL, "pssp-gb")
        assert result.crashed
        assert result.smashed  # false positive

    def test_dynaguard_leaks_cab_entries(self):
        """The unwound frames' CAB entries are never popped."""
        result, process = run(UNWIND_THEN_CALL, "dynaguard")
        # The program completes (the stale entries poison future forks,
        # not this run)...
        assert result.state == "exited"
        # ...but the canary address buffer still holds the dead frames:
        # work + helper pushed, nobody popped.
        assert process.tls.cab_index >= 2

    def test_dynaguard_stale_entries_poison_fork(self):
        """A fork after the unwind rewrites stale stack addresses —
        DynaGuard's fork hook cannot tell dead entries from live ones."""
        _, process = run(UNWIND_THEN_CALL, "dynaguard")
        kernel = process.kernel
        stale = process.tls.cab_index
        assert stale >= 2
        child = kernel.fork(process)
        # The hook walked the stale entries: dead stack slots that still
        # held the old canary were rewritten to the new one.
        rewritten = 0
        new_canary = child.tls.canary
        for i in range(child.tls.cab_index):
            address = child.memory.read_word(child.tls.cab_base + 8 * i)
            if child.memory.read_word(address) == new_canary:
                rewritten += 1
        assert rewritten >= 1  # writes into frames that no longer exist

    def test_dcr_false_positive_after_unwinding(self):
        """DCR's in-stack list head points into dead frames after the
        longjmp; the next protected call computes a nonsense delta and
        the epilogue aborts a perfectly healthy process."""
        result, _ = run(UNWIND_THEN_CALL, "dcr")
        assert result.crashed
        assert result.smashed  # a *false positive* canary abort
