"""Simulated libc semantics, exercised through compiled MiniC."""

import pytest

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel
from repro.libc.builtins import OVERFLOW_VECTORS, build_natives


def run(source, stdin=b"", scheme="ssp", seed=9):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="t")
    process, _ = deploy(kernel, binary, scheme)
    process.feed_stdin(stdin)
    result = process.run()
    return result, process


class TestStringRoutines:
    def test_strlen(self):
        result, _ = run('int main() { return strlen("hello"); }')
        assert result.exit_status == 5

    def test_strcpy_copies_and_returns_dst(self):
        result, process = run("""
int main() {
    char buf[32];
    strcpy(buf, "copy me");
    puts(buf);
    return strlen(buf);
}
""")
        assert result.exit_status == 7
        assert process.stdout_text() == "copy me\n"

    def test_strncpy_pads(self):
        result, _ = run("""
int main() {
    char buf[16];
    buf[5] = 77;
    strncpy(buf, "ab", 8);
    return buf[5];
}
""")
        assert result.exit_status == 0  # padded with NULs

    def test_strcat(self):
        result, process = run("""
int main() {
    char buf[32];
    strcpy(buf, "foo");
    strcat(buf, "bar");
    puts(buf);
    return strlen(buf);
}
""")
        assert process.stdout_text() == "foobar\n"
        assert result.exit_status == 6

    def test_strcmp(self):
        result, _ = run("""
int main() {
    int same; int diff;
    same = strcmp("abc", "abc");
    diff = strcmp("abc", "abd");
    return (same == 0) + (diff != 0);
}
""")
        assert result.exit_status == 2

    def test_memcmp_and_memset(self):
        result, _ = run("""
int main() {
    char a[16];
    char b[16];
    memset(a, 7, 16);
    memset(b, 7, 16);
    return memcmp(a, b, 16);
}
""")
        assert result.exit_status == 0

    def test_memcpy(self):
        result, _ = run("""
int main() {
    char a[16];
    char b[16];
    strcpy(a, "data!");
    memcpy(b, a, 6);
    return strcmp(a, b);
}
""")
        assert result.exit_status == 0

    def test_strchr(self):
        result, _ = run("""
int main() {
    char *s;
    char *hit;
    s = "hello";
    hit = strchr(s, 'l');
    return hit - s;
}
""")
        assert result.exit_status == 2

    def test_atoi(self):
        result, _ = run('int main() { return atoi("123"); }')
        assert result.exit_status == 123


class TestStdio:
    def test_printf_formats(self):
        _, process = run("""
int main() {
    printf("n=%d hex=%x ch=%c s=%s pct=%%", 42, 255, 'Z', "ok");
    return 0;
}
""")
        assert process.stdout_text() == "n=42 hex=ff ch=Z s=ok pct=%"

    def test_printf_negative(self):
        _, process = run('int main() { printf("%d", 0 - 5); return 0; }')
        assert process.stdout_text() == "-5"

    def test_sprintf(self):
        result, _ = run("""
int main() {
    char buf[32];
    sprintf(buf, "x%dy", 9);
    return strlen(buf);
}
""")
        assert result.exit_status == 3

    def test_snprintf_clips(self):
        result, process = run("""
int main() {
    char buf[8];
    snprintf(buf, 4, "abcdefgh");
    puts(buf);
    return strlen(buf);
}
""")
        assert result.exit_status == 3
        assert process.stdout_text() == "abc\n"

    def test_gets_reads_line(self):
        result, process = run("""
int main() {
    char buf[32];
    gets(buf);
    puts(buf);
    return strlen(buf);
}
""", stdin=b"first\nsecond\n")
        assert process.stdout_text() == "first\n"
        assert result.exit_status == 5

    def test_read_partial(self):
        result, _ = run("""
int main() {
    char buf[32];
    return read(0, buf, 32);
}
""", stdin=b"abc")
        assert result.exit_status == 3


class TestAllocator:
    def test_malloc_alignment(self):
        result, _ = run("""
int main() {
    int *a;
    int *b;
    a = malloc(5);
    b = malloc(5);
    return b - a;
}
""")
        assert result.exit_status == 2  # 16 bytes apart = 2 int strides

    def test_malloc_oom_returns_zero(self):
        result, _ = run("""
int main() {
    int *p;
    p = malloc(0x100000);
    return p == 0;
}
""")
        assert result.exit_status == 1

    def test_calloc_zeroes(self):
        result, _ = run("""
int main() {
    int *p;
    p = calloc(4, 8);
    return p[0] + p[3];
}
""")
        assert result.exit_status == 0


class TestProcessControl:
    def test_exit_stops_execution(self):
        result, _ = run("""
int main() {
    exit(9);
    return 1;
}
""")
        assert result.exit_status == 9

    def test_abort_raises_sigabrt(self):
        result, _ = run("int main() { abort(); return 0; }")
        assert result.crashed
        assert result.signal == "SIGABRT"
        assert not result.smashed  # plain abort is not a canary event

    def test_getpid(self):
        result, _ = run("int main() { return getpid() > 0; }")
        assert result.exit_status == 1

    def test_rand_varies(self):
        result, _ = run("""
int main() {
    return rand() != rand();
}
""")
        assert result.exit_status == 1


class TestRegistry:
    def test_build_natives_is_fresh_each_call(self):
        a = build_natives()
        b = build_natives()
        assert a is not b
        assert set(a) == set(b)

    def test_override_via_extra(self):
        base = build_natives()
        override = build_natives(extra={"strlen": base["strcpy"]})
        assert override["strlen"] is base["strcpy"]

    def test_overflow_vectors_list_the_paper_functions(self):
        for name in ("strcpy", "read", "memcpy", "strcat", "gets"):
            assert name in OVERFLOW_VECTORS
        assert "strlen" not in OVERFLOW_VECTORS
