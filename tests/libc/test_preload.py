"""The P-SSP preload library: shadow-canary maintenance invariants."""

from repro.core.deploy import build, deploy
from repro.core.rerandomize import check_packed32, fold32
from repro.kernel.kernel import Kernel
from repro.libc.preload import SO_SIZE_BYTES, SO_SOURCE_LINES, PSSPPreload

SIMPLE = "int main() { return 0; }"


def spawn(scheme="pssp", seed=3):
    kernel = Kernel(seed)
    binary = build(SIMPLE, scheme, name="t")
    process, _ = deploy(kernel, binary, scheme)
    return kernel, process


class TestCompilerMode:
    def test_setup_binds_pair_to_canary(self):
        _, process = spawn("pssp")
        tls = process.tls
        assert tls.shadow_c0 ^ tls.shadow_c1 == tls.canary

    def test_fork_refreshes_child_pair_only(self):
        kernel, parent = spawn("pssp")
        before = (parent.tls.shadow_c0, parent.tls.shadow_c1)
        child = kernel.fork(parent)
        assert (parent.tls.shadow_c0, parent.tls.shadow_c1) == before
        assert (child.tls.shadow_c0, child.tls.shadow_c1) != before

    def test_fork_never_touches_tls_canary(self):
        # The paper's central compatibility property.
        kernel, parent = spawn("pssp")
        canary = parent.tls.canary
        child = kernel.fork(parent)
        assert child.tls.canary == canary
        assert parent.tls.canary == canary

    def test_each_fork_gets_an_independent_pair(self):
        kernel, parent = spawn("pssp")
        pairs = set()
        for _ in range(8):
            child = kernel.fork(parent)
            pairs.add((child.tls.shadow_c0, child.tls.shadow_c1))
            assert child.tls.shadow_c0 ^ child.tls.shadow_c1 == child.tls.canary
        assert len(pairs) == 8

    def test_thread_gets_its_own_pair(self):
        kernel, process = spawn("pssp")
        thread = kernel.create_thread(process)
        assert thread.tls.shadow_c0 != process.tls.shadow_c0
        assert thread.tls.shadow_c0 ^ thread.tls.shadow_c1 == thread.tls.canary


class TestBinaryMode:
    def test_packed_word_checks_out(self):
        _, process = spawn("pssp-binary")
        packed = process.tls.shadow_c0
        assert check_packed32(packed, process.tls.canary)

    def test_packed_halves_fold_correctly(self):
        _, process = spawn("pssp-binary")
        packed = process.tls.shadow_c0
        lo = packed & 0xFFFFFFFF
        hi = packed >> 32
        assert lo ^ hi == fold32(process.tls.canary)

    def test_fork_repacks(self):
        kernel, parent = spawn("pssp-binary")
        child = kernel.fork(parent)
        assert child.tls.shadow_c0 != parent.tls.shadow_c0
        assert check_packed32(child.tls.shadow_c0, child.tls.canary)


class TestArtifactMetadata:
    def test_paper_reported_size(self):
        assert SO_SIZE_BYTES == 16 * 1024
        assert SO_SOURCE_LINES == 358

    def test_bad_mode_rejected(self):
        import pytest

        from repro.errors import ProtectionError

        with pytest.raises(ProtectionError):
            PSSPPreload("bogus")

    def test_binary_mode_interposes_stack_chk(self):
        preload = PSSPPreload("binary")
        binaries = preload.preload_binaries()
        assert any(b.has_function("__stack_chk_fail") for b in binaries)

    def test_compiler_mode_needs_no_interposition(self):
        assert PSSPPreload("compiler").preload_binaries() == []
