"""Figure regenerators."""

import pytest

from repro.harness.figures import (
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    frames_share_canary,
)


class TestFigure1:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure1()

    def test_ssp_has_one_canary_word(self, fig):
        for frame in fig["ssp"].frames:
            assert len(frame.canary_words) == 1

    def test_pssp_has_a_pair(self, fig):
        for frame in fig["pssp"].frames:
            assert len(frame.canary_words) == 2
            assert [offset for offset, _ in frame.canary_words] == [8, 16]

    def test_render_mentions_return_address(self, fig):
        assert "return address" in fig["ssp"].render()


class TestFigure2:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure2()

    def test_pssp_frames_share_one_stack_canary(self, fig):
        assert frames_share_canary(fig["pssp"])

    def test_pssp_nt_frames_differ(self, fig):
        assert not frames_share_canary(fig["pssp-nt"])

    def test_both_capture_two_frames(self, fig):
        assert len(fig["pssp"].frames) == 2
        assert len(fig["pssp-nt"].frames) == 2


class TestFigure3:
    def test_listings_show_the_mechanism(self):
        fig = figure3()
        assert "__stack_chk_fail" in fig.rewritten_epilogue
        assert "rdi" in fig.rewritten_epilogue
        assert "__GI__fortify_fail" in fig.stack_chk_listing
        assert "ret" in fig.stack_chk_listing

    def test_render_combines_both(self):
        text = figure3().render()
        assert "Code 6" in text and "Figures 3/4" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure5(spec_names=("perlbench", "gcc", "mcf", "lbm"))

    def test_per_program_series_present(self, fig):
        assert set(fig.overheads) == {"perlbench", "gcc", "mcf", "lbm"}

    def test_instrumentation_costs_more_than_compiler(self, fig):
        assert fig.instrumentation_average > fig.compiler_average

    def test_compiler_average_sub_percent(self, fig):
        assert 0 <= fig.compiler_average < 1.0

    def test_instrumentation_average_order_one_percent(self, fig):
        assert 0 < fig.instrumentation_average < 4.0

    def test_render_has_average_row(self, fig):
        assert "AVERAGE" in fig.render()


class TestFigure6:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure6()

    def test_buffer_holds_one_half_per_live_frame(self, fig):
        assert len(fig.buffer_entries) == 2
        assert len(fig.stack_halves) == 2

    def test_pairs_bind_to_tls_canary(self, fig):
        assert fig.consistent()

    def test_render(self, fig):
        assert "TLS canary" in fig.render()
