"""The measured scheme-properties matrix."""

import pytest

from repro.harness.matrix import properties_matrix


@pytest.fixture(scope="module")
def matrix():
    return properties_matrix(attack_trials=2500)


class TestMatrixShape:
    def test_ten_schemes(self, matrix):
        assert len(matrix.rows) == 10

    def test_only_ssp_falls_to_brop(self, matrix):
        vulnerable = {r.scheme for r in matrix.rows if not r.brop_prevented}
        assert vulnerable == {"ssp"}

    def test_only_raf_breaks_fork(self, matrix):
        broken = {r.scheme for r in matrix.rows if not r.fork_correct}
        assert broken == {"raf-ssp"}

    def test_leak_resilience_is_owf_and_gb(self, matrix):
        resilient = {r.scheme for r in matrix.rows if r.leak_resilient}
        assert resilient == {"pssp-owf", "pssp-gb"}

    def test_unwinding_fragile_schemes(self, matrix):
        fragile = {r.scheme for r in matrix.rows if not r.unwinding_safe}
        # DCR false-positives; the global-buffer variant desyncs its
        # count.  (DynaGuard leaks bookkeeping without crashing, which
        # this column — "no false positives" — does not penalise.)
        assert fragile == {"dcr", "pssp-gb"}

    def test_cost_ordering(self, matrix):
        cost = {r.scheme: r.per_call_cycles for r in matrix.rows}
        assert cost["ssp"] <= cost["pssp"] < cost["pssp-binary"]
        assert cost["pssp"] < cost["dynaguard"] < cost["dcr"]
        assert cost["pssp-owf"] < cost["pssp-nt"] < cost["pssp-gb"] + 60

    def test_pssp_lv_stays_polymorphic(self, matrix):
        # The single-variable degeneracy fix: LV must prevent BROP even
        # when only one buffer is protected.
        assert matrix.row("pssp-lv").brop_prevented

    def test_render(self, matrix):
        text = matrix.render()
        assert "BROP" in text and "pssp-owf" in text
