"""Terminal plotting."""

from repro.harness.figures import figure5
from repro.harness.plots import bar_chart, figure5_chart, grouped_bar_chart


class TestBarChart:
    def test_scales_to_peak(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_values_printed(self):
        chart = bar_chart([("x", 1.234)], unit="%")
        assert "1.234%" in chart

    def test_title(self):
        chart = bar_chart([("x", 1.0)], title="overheads")
        assert chart.splitlines()[0] == "overheads"

    def test_empty_series(self):
        assert bar_chart([], title="nothing") == "nothing"

    def test_zero_values_do_not_divide_by_zero(self):
        chart = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "0.000" in chart

    def test_labels_aligned(self):
        chart = bar_chart([("short", 1.0), ("muchlonger", 2.0)])
        bars = [line.index("|") for line in chart.splitlines()]
        assert len(set(bars)) == 1


class TestGroupedChart:
    def test_shared_scale_across_groups(self):
        chart = grouped_bar_chart(
            {"a": [("x", 10.0)], "b": [("y", 5.0)]}, width=10
        )
        lines = [l for l in chart.splitlines() if "|" in l]
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_group_headers(self):
        chart = grouped_bar_chart({"first": [("x", 1.0)]})
        assert "[first]" in chart


class TestFigure5Chart:
    def test_renders_both_series(self):
        result = figure5(spec_names=("mcf", "perlbench"))
        chart = figure5_chart(result)
        assert "compiler-based" in chart
        assert "instrumentation-based" in chart
        assert "averages:" in chart
        assert "perlbench" in chart

    def test_csv_export(self):
        result = figure5(spec_names=("mcf", "perlbench"))
        csv = result.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("program,")
        assert lines[-1].startswith("AVERAGE,")
        assert len(lines) == 4  # header + 2 programs + average
