"""The scheme health-check."""

from repro.cli import main
from repro.harness.validate import validate_all, validate_scheme


class TestValidate:
    def test_all_registered_schemes_pass(self):
        report = validate_all()
        assert report.ok, report.render()

    def test_every_scheme_present(self):
        from repro.core.deploy import SCHEMES

        report = validate_all()
        assert {r.scheme for r in report.results} >= set(SCHEMES)

    def test_single_scheme(self):
        result = validate_scheme("pssp")
        assert result.ok
        assert result.scheme == "pssp"

    def test_none_is_annotated_baseline(self):
        result = validate_scheme("none")
        assert result.ok
        assert "baseline" in result.note

    def test_render_mentions_verdicts(self):
        text = validate_all().render()
        assert "ALL OK" in text
        assert "semantics" in text

    def test_cli_exit_zero_when_healthy(self, capsys):
        assert main(["validate"]) == 0
        assert "ALL OK" in capsys.readouterr().out
