"""Table regenerators: structural and shape assertions.

Full-fidelity regeneration lives in benchmarks/; these tests run reduced
configurations and assert the *shape* properties the paper reports.
"""

import pytest

from repro.harness.tables import (
    effectiveness,
    table1,
    table2,
    table3,
    table4,
    table5,
)

#: table regeneration runs attack campaigns — excluded from the CI quick-signal subset.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def t1():
    return table1(spec_names=("mcf", "astar"), attack_trials=2500)


class TestTable1(object):
    def test_ssp_falls_to_brop(self, t1):
        assert t1.row("ssp").brop_prevented is False

    def test_all_defences_prevent_brop(self, t1):
        for scheme in ("raf-ssp", "dynaguard", "dcr", "pssp"):
            assert t1.row(scheme).brop_prevented is True, scheme

    def test_only_raf_breaks_correctness(self, t1):
        assert t1.row("raf-ssp").fork_correct is False
        for scheme in ("ssp", "dynaguard", "dcr", "pssp"):
            assert t1.row(scheme).fork_correct is True, scheme

    def test_dynaguard_dbi_near_156_percent(self, t1):
        assert 120 < t1.row("dynaguard").instrumentation_overhead < 190

    def test_dcr_instrumentation_above_10_percent(self, t1):
        assert t1.row("dcr").instrumentation_overhead > 10

    def test_pssp_cheapest_defence(self, t1):
        pssp = t1.row("pssp")
        dynaguard = t1.row("dynaguard")
        assert pssp.compiler_overhead < dynaguard.compiler_overhead
        assert pssp.instrumentation_overhead < dynaguard.instrumentation_overhead
        assert pssp.instrumentation_overhead < t1.row("dcr").instrumentation_overhead

    def test_render(self, t1):
        text = t1.render()
        assert "pssp" in text and "dynaguard" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def t2(self):
        return table2(spec_names=("perlbench", "gcc", "mcf"))

    def test_dynamic_instrumentation_zero_expansion(self, t2):
        assert t2.instrumentation_dynamic_expansion == 0.0

    def test_compiler_expansion_small_positive(self, t2):
        assert 0 < t2.compiler_expansion < 10

    def test_static_expansion_exceeds_compiler(self, t2):
        assert t2.instrumentation_static_expansion > t2.compiler_expansion

    def test_absolute_metrics_present(self, t2):
        assert 8 <= t2.compiler_bytes_per_function <= 64
        assert 100 <= t2.static_bytes_added <= 500

    def test_render(self, t2):
        assert "%" in t2.render()


class TestTable3:
    @pytest.fixture(scope="class")
    def t3(self):
        return table3(requests=6)

    def test_deltas_in_third_decimal(self, t3):
        for server, by_scheme in t3.results.items():
            native = by_scheme["ssp"].mean_response_ms
            for scheme in ("pssp", "pssp-binary"):
                delta = abs(by_scheme[scheme].mean_response_ms - native)
                assert delta < 0.05, (server, scheme)

    def test_ordering_matches_paper(self, t3):
        apache = t3.results["apache2"]["ssp"].mean_response_ms
        nginx = t3.results["nginx"]["ssp"].mean_response_ms
        assert apache > 10 * nginx


class TestTable4:
    @pytest.fixture(scope="class")
    def t4(self):
        return table4()

    def test_memory_identical_across_builds(self, t4):
        for database, by_scheme in t4.results.items():
            values = {round(s.memory_mb, 2) for s in by_scheme.values()}
            assert len(values) == 1, database

    def test_sqlite_batch_dominates(self, t4):
        assert (
            t4.results["sqlite"]["ssp"].mean_query_ms
            > t4.results["mysql"]["ssp"].mean_query_ms * 30
        )


class TestTable5:
    @pytest.fixture(scope="class")
    def t5(self):
        return table5()

    def test_pssp_is_single_digit_extra(self, t5):
        assert t5.cycles["pssp"] < 30

    def test_nt_dominated_by_rdrand(self, t5):
        assert 300 < t5.cycles["pssp-nt"] < 420

    def test_lv_two_vars_matches_nt(self, t5):
        delta = abs(t5.cycles["pssp-lv (2 vars)"] - t5.cycles["pssp-nt"])
        assert delta < 40

    def test_lv_four_vars_roughly_triple(self, t5):
        ratio = t5.cycles["pssp-lv (4 vars)"] / t5.cycles["pssp-lv (2 vars)"]
        assert 2.4 < ratio < 3.4  # paper: 986/343 ≈ 2.9

    def test_owf_between_pssp_and_nt(self, t5):
        assert t5.cycles["pssp"] < t5.cycles["pssp-owf"] < t5.cycles["pssp-nt"]

    def test_ablation_rows_present(self, t5):
        for label in ("ssp", "dynaguard", "dcr", "pssp-gb", "pssp-binary"):
            assert label in t5.cycles


class TestEffectiveness:
    @pytest.fixture(scope="class")
    def report(self):
        return effectiveness(max_trials=2500, compat_runs=2)

    def test_ssp_servers_fall(self, report):
        for row in report.rows:
            if row.scheme == "ssp":
                assert row.attack_succeeded, row.server

    def test_pssp_servers_resist(self, report):
        for row in report.rows:
            if row.scheme == "pssp":
                assert not row.attack_succeeded, row.server

    def test_no_compat_false_positives(self, report):
        assert report.compat_false_positives == 0
        assert report.compat_runs == 4

    def test_render(self, report):
        assert "compatibility" in report.render()
