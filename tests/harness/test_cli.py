"""CLI and report generator."""

import pytest

from repro.cli import main
from repro.harness.report import generate_report

#: full report generation drives whole campaigns — excluded from the CI quick-signal subset.
pytestmark = pytest.mark.slow


class TestCli:
    def test_schemes_lists_registry(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for scheme in ("ssp", "pssp", "pssp-owf", "dynaguard", "dcr"):
            assert scheme in out

    def test_table5(self, capsys):
        assert main(["table", "5"]) == 0
        out = capsys.readouterr().out
        assert "pssp-nt" in out and "extra cycles" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "%" in capsys.readouterr().out

    def test_unknown_table(self, capsys):
        assert main(["table", "9"]) == 2

    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "canary word" in capsys.readouterr().out

    def test_figure3(self, capsys):
        assert main(["figure", "3"]) == 0
        assert "__stack_chk_fail" in capsys.readouterr().out

    def test_figure6(self, capsys):
        assert main(["figure", "6"]) == 0
        assert "TLS canary" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "42"]) == 2

    def test_sweep_width(self, capsys):
        assert main(["sweep", "width", "--samples", "20000"]) == 0
        out = capsys.readouterr().out
        assert "pssp-binary" in out

    def test_validate_command(self, capsys):
        assert main(["validate"]) == 0
        assert "ALL OK" in capsys.readouterr().out

    def test_attack_ssp_reports_break(self, capsys):
        # exit 1 signals the defence was broken — scripting-friendly.
        assert main(["attack", "--scheme", "ssp", "--trials", "6000"]) == 1
        out = capsys.readouterr().out
        assert "success:   True" in out

    def test_attack_pssp_reports_hold(self, capsys):
        assert main(["attack", "--scheme", "pssp", "--trials", "1500"]) == 0
        out = capsys.readouterr().out
        assert "success:   False" in out

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["attack", "--scheme", "rot13"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestTelemetryCommands:
    def test_stats_table(self, capsys):
        assert main(["stats", "--schemes", "none,pssp"]) == 0
        out = capsys.readouterr().out
        assert "scheme" in out and "pssp" in out and "prologues" in out

    def test_stats_unknown_scheme_is_usage_error(self, capsys):
        assert main(["stats", "--schemes", "rot13"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_stats_json_with_smash(self, capsys):
        import json

        assert main(["stats", "--schemes", "pssp", "--smash", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        delta = payload["schemes"]["pssp"]
        assert delta["canary_smashes_detected_total"] == 1
        assert delta["canary_prologue_stores_total"] > 0
        assert "events" in payload

    def test_stats_prometheus(self, capsys):
        assert main(["stats", "--schemes", "pssp", "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE machine_instructions_total counter" in out

    def test_stats_out_file(self, tmp_path, capsys):
        target = tmp_path / "stats.txt"
        assert main(["stats", "--schemes", "none", "--out", str(target)]) == 0
        assert "scheme" in target.read_text()

    def test_profile_table(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "mid_mix" in out and "leaf_sum" in out and "total" in out

    def test_profile_chrome_trace_out(self, tmp_path, capsys):
        import json

        target = tmp_path / "trace.json"
        assert main(["profile", "--out", str(target)]) == 0
        trace = json.loads(target.read_text())
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"
        complete = [event for event in events if event["ph"] == "X"]
        assert complete
        assert all(
            {"name", "ts", "dur", "pid", "tid"} <= set(event)
            for event in complete
        )
        assert trace["otherData"]["total_cycles"] > 0

    def test_attack_telemetry_out(self, tmp_path, capsys):
        import json

        target = tmp_path / "attack-telemetry.json"
        assert main([
            "attack", "--scheme", "pssp", "--trials", "300",
            "--telemetry-out", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["counters"]["canary_smashes_detected_total"] > 0
        assert payload["events"]["sample_every"] == 100


class TestReport:
    @pytest.fixture(scope="class")
    def report_text(self):
        # Reduced settings: small SPEC subset, shortened attack budget.
        return generate_report(
            spec_names=("mcf", "astar"),
            full_figure5=False,
            attack_trials=2500,
        )

    def test_all_sections_present(self, report_text):
        for heading in (
            "## Table I", "## Table II", "## Table III", "## Table IV",
            "## Table V", "## Figure 5", "## Figures 1 & 2",
            "## Figures 3 & 4", "## Figure 6", "## §VI-C",
            "## Measured properties matrix",
        ):
            assert heading in report_text

    def test_mentions_paper_references(self, report_text):
        assert "0.24" in report_text  # the paper's headline overhead
        assert "156" in report_text   # DynaGuard PIN
        assert "33.006" in report_text  # Apache native

    def test_renders_measured_tables(self, report_text):
        assert "BROP prev." in report_text
        assert "extra cycles" in report_text
