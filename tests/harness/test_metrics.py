"""Measurement primitives."""

import pytest

from repro.compiler.codegen import compile_source
from repro.harness.metrics import (
    CLOCK_HZ,
    expansion_percent,
    overhead_percent,
    run_program,
)

SIMPLE = """
int main() {
    int acc; int i;
    acc = 0;
    for (i = 0; i < 10; i = i + 1) { acc = acc + i; }
    return acc;
}
"""

PROTECTED = """
int work(int n) {
    char buf[16];
    buf[0] = n;
    return buf[0];
}
int main() { return work(5); }
"""


class TestRunProgram:
    def test_returns_metrics(self):
        metrics = run_program(SIMPLE, "none", name="simple")
        assert metrics.exit_status == 45
        assert not metrics.crashed
        assert metrics.cycles > 0
        assert metrics.instructions > 0
        assert metrics.text_bytes > 0

    def test_deterministic_given_seed(self):
        a = run_program(SIMPLE, "ssp", seed=11)
        b = run_program(SIMPLE, "ssp", seed=11)
        assert a.cycles == b.cycles

    def test_seconds_conversion(self):
        metrics = run_program(SIMPLE, "none")
        assert metrics.seconds == pytest.approx(metrics.cycles / CLOCK_HZ)

    def test_clock_hz_is_the_single_source(self):
        # The workloads layer keeps a per-millisecond literal (importing
        # the harness there would be circular); pin it to CLOCK_HZ so
        # the two clocks cannot drift apart.
        from repro.workloads.webserver import CYCLES_PER_MS

        assert CYCLES_PER_MS == CLOCK_HZ / 1e3

    def test_smash_detections_come_from_telemetry(self):
        smashing = """
        int victim() {
            char buf[16];
            int i;
            for (i = 0; i < 64; i = i + 1) { buf[i] = 65; }
            return 0;
        }
        int main() { return victim(); }
        """
        metrics = run_program(smashing, "pssp", name="smash")
        assert metrics.crashed
        assert metrics.smashes_detected == 1
        assert metrics.degradations == 0
        assert metrics.telemetry["canary_prologue_stores_total"] > 0

    def test_scheme_ordering(self):
        none = run_program(PROTECTED, "none")
        ssp = run_program(PROTECTED, "ssp")
        nt = run_program(PROTECTED, "pssp-nt")
        assert none.cycles < ssp.cycles < nt.cycles


class TestDerivedMetrics:
    def test_overhead_percent(self):
        base = run_program(PROTECTED, "none")
        candidate = run_program(PROTECTED, "pssp-nt")
        overhead = overhead_percent(base, candidate)
        assert overhead > 0
        assert overhead == pytest.approx(
            (candidate.cycles - base.cycles) / base.cycles * 100
        )

    def test_overhead_of_identical_runs_is_zero(self):
        metrics = run_program(SIMPLE, "ssp")
        assert overhead_percent(metrics, metrics) == 0.0

    def test_expansion_percent(self):
        native = compile_source(PROTECTED, protection="ssp")
        pssp = compile_source(PROTECTED, protection="pssp")
        assert expansion_percent(native, pssp) > 0
        assert expansion_percent(native, native) == 0.0


class TestInstrumentationPathsComparable:
    def test_dynamic_and_static_rewriting_cost_alike(self):
        """Paper §VI-A1: 'our binary rewriter tools for dynamic linking
        program and static linking program have similar runtime
        performance' — the per-call sequences are identical; only the
        glue (PLT stub vs in-binary jmp hook path) differs."""
        dynamic = run_program(PROTECTED, "pssp-binary")
        static = run_program(PROTECTED, "pssp-binary-static")
        assert static.cycles == pytest.approx(dynamic.cycles, rel=0.15)
