"""CPU edge cases: faults, deep recursion, indirect control flow."""

import pytest

from repro.core.deploy import build, deploy
from repro.errors import IllegalInstruction, InvalidJump
from repro.kernel.kernel import Kernel


def spawn(source, scheme="none", seed=5, cycle_limit=50_000_000):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="t")
    process, _ = deploy(kernel, binary, scheme, cycle_limit=cycle_limit)
    return process


class TestStackExhaustion:
    def test_runaway_recursion_faults_cleanly(self):
        # The stack segment ends; the next push lands on unmapped memory —
        # a clean SIGSEGV, just like hitting a guard page.
        source = """
int infinite(int n) {
    char pad[128];
    pad[0] = n;
    return infinite(n + 1);
}
int main() { return infinite(0); }
"""
        result = spawn(source).run()
        assert result.crashed
        assert result.signal == "SIGSEGV"

    def test_deep_but_bounded_recursion_succeeds(self):
        source = """
int depth(int n) {
    if (n == 0) { return 0; }
    return depth(n - 1) + 1;
}
int main() { return depth(200) & 255; }
"""
        result = spawn(source).run()
        assert result.state == "exited"
        assert result.exit_status == 200


class TestIndirectControlFlow:
    def test_call_through_function_pointer(self):
        # MiniC has no indirect-call syntax; pthread_create's start
        # routine is the indirect call path (address resolved at runtime).
        result = spawn("""
int worker(int arg) { return arg * 2; }
int main() {
    int tid;
    pthread_create(&tid, 0, worker, 21);
    return tid;
}
""").run()
        assert result.state == "exited"

    def test_jump_to_data_address_faults(self):
        source = """
int main() {
    int data[4];
    data[0] = 1;
    return 0;
}
"""
        process = spawn(source)
        # Overwrite main's return address with a data-segment address.
        from repro.errors import InvalidJump as IJ

        data_address = process.memory.segment("data").base
        with pytest.raises(IJ):
            process.image.resolve(data_address)


class TestCrashDetails:
    def test_segv_reports_address(self):
        source = """
int main() {
    int *p;
    p = 0x1234;
    return *p;
}
"""
        result = spawn(source).run()
        assert result.crashed
        assert "0x1234" in str(result.crash)

    def test_wild_write_reports_write_access(self):
        source = """
int main() {
    int *p;
    p = 0x1234;
    *p = 7;
    return 0;
}
"""
        result = spawn(source).run()
        assert result.crashed
        assert "write" in str(result.crash)

    def test_cycle_limit_reports_sigxcpu(self):
        source = """
int main() {
    while (1) { }
    return 0;
}
"""
        result = spawn(source, cycle_limit=20_000).run()
        assert result.crashed
        assert result.signal == "SIGXCPU"
