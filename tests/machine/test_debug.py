"""Debugger tools: backtraces, breakpoints, watchpoints."""

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel
from repro.machine.debug import Debugger, backtrace, canary_watch, inspect_frame

NESTED = """
int inner(int x) {
    char pad[16];
    pad[0] = x;
    return pad[0] + 1;
}
int outer(int x) {
    char buf[16];
    buf[0] = x;
    return inner(buf[0]);
}
int main() { return outer(5); }
"""

OVERFLOWER = """
int handler(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


def spawn(source, scheme="ssp", seed=71):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="t")
    process, _ = deploy(kernel, binary, scheme)
    return process


class TestBacktrace:
    def test_backtrace_from_breakpoint(self):
        process = spawn(NESTED)
        traces = []
        debugger = Debugger(process)
        debugger.break_at("inner", 10)
        debugger.on_break = lambda hit: traces.append(backtrace(process))
        process.run()
        debugger.detach()
        assert traces, "breakpoint never fired"
        chain = [frame.function for frame in traces[0]]
        assert chain[:3] == ["inner", "outer", "main"]

    def test_frame_links(self):
        process = spawn(NESTED)
        captured = []
        debugger = Debugger(process)
        debugger.break_at("inner", 10)
        debugger.on_break = lambda hit: captured.append(backtrace(process))
        process.run()
        frames = captured[0]
        assert frames[0].caller == "outer"
        assert frames[1].caller == "main"
        assert frames[0].rbp < frames[1].rbp  # deeper = lower address


class TestInspectFrame:
    def test_canaries_visible(self):
        process = spawn(NESTED, scheme="pssp")
        views = []
        debugger = Debugger(process)
        debugger.break_at("outer", 12)
        debugger.on_break = lambda hit: views.append(inspect_frame(process))
        process.run()
        view = views[0]
        assert view.function == "outer"
        canaries = view.canaries()
        assert set(canaries) == {8, 16}
        assert canaries[8] ^ canaries[16] == process.tls.canary


class TestBreakpoints:
    def test_break_at_entry(self):
        process = spawn(NESTED)
        debugger = Debugger(process)
        debugger.break_at("outer", 0, label="outer-entry")
        process.run()
        assert any("outer-entry" in hit for hit in debugger.hits)

    def test_detach_restores_hook(self):
        process = spawn(NESTED)
        debugger = Debugger(process)
        debugger.detach()
        assert process.cpu.trace is None

    def test_hooks_stack(self):
        process = spawn(NESTED)
        seen = []
        process.cpu.trace = lambda n, i, ins: seen.append(n)
        debugger = Debugger(process)
        debugger.break_at("main", 0)
        process.run()
        debugger.detach()
        assert seen  # the original hook kept firing underneath
        assert debugger.hits


class TestWatchpoints:
    def test_canary_watch_pinpoints_the_killing_write(self):
        process = spawn(OVERFLOWER, scheme="ssp")
        debugger = canary_watch(process, "handler")
        process.feed_stdin(b"A" * 100)
        result = process.call("handler", (100,))
        debugger.detach()
        assert result.smashed
        # The watch fired and identified the canary slot.
        assert any("handler[rbp-8]" in hit for hit in debugger.hits)

    def test_no_watch_hit_on_benign_run(self):
        process = spawn(OVERFLOWER, scheme="ssp")
        debugger = canary_watch(process, "handler")
        process.feed_stdin(b"A" * 8)
        result = process.call("handler", (8,))
        debugger.detach()
        assert result.state == "exited"
        # The slot was *written once* by the prologue (0 -> canary) but
        # never changed afterwards; allow that single arming transition.
        kills = [hit for hit in debugger.hits if "-> 0x41414141" in hit]
        assert not kills
