"""Hardware devices: TSC and RDRAND."""

from repro.crypto.random import EntropySource
from repro.machine.devices import RdRandDevice, TimeStampCounter


class TestTimeStampCounter:
    def test_advances(self):
        tsc = TimeStampCounter()
        tsc.advance(100)
        assert tsc.read() == 100

    def test_base_epoch(self):
        tsc = TimeStampCounter(base=5000)
        assert tsc.read() == 5000

    def test_wraps_at_64_bits(self):
        tsc = TimeStampCounter(base=2**64 - 1)
        tsc.advance(2)
        assert tsc.read() == 1


class TestRdRand:
    def test_draws_counted(self):
        device = RdRandDevice(EntropySource(1))
        device.read()
        device.read()
        assert device.draws == 2

    def test_success_flag(self):
        device = RdRandDevice(EntropySource(1))
        _, ok = device.read()
        assert ok is True

    def test_values_differ(self):
        device = RdRandDevice(EntropySource(1))
        a, _ = device.read()
        b, _ = device.read()
        assert a != b

    def test_failure_rate_produces_failures(self):
        device = RdRandDevice(EntropySource(1), failure_rate=1.0)
        value, ok = device.read()
        assert ok is False and value == 0
        assert device.draws == 0
