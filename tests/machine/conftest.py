"""Shared helpers for machine-level tests: run raw assembly on a CPU."""

from __future__ import annotations

import pytest

from repro.binfmt.elf import Binary
from repro.binfmt.loader import load
from repro.crypto.random import EntropySource
from repro.isa.assembler import assemble
from repro.machine.cpu import CPU
from repro.machine.devices import RdRandDevice, TimeStampCounter
from repro.machine.memory import STACK_TOP, TLS_BASE, standard_memory


class AsmHarness:
    """Assemble source, load it, and execute functions on a fresh CPU."""

    def __init__(self, source: str, *, seed: int = 7, natives=None) -> None:
        self.binary = Binary("test")
        for function in assemble(source).values():
            self.binary.add_function(function)
        self.memory = standard_memory()
        self.image = load(self.binary, self.memory)
        self.cpu = CPU(
            self.memory,
            self.image,
            natives or {},
            tsc=TimeStampCounter(1000),
            rdrand=RdRandDevice(EntropySource(seed)),
        )
        self.cpu.registers.fs_base = TLS_BASE
        self.cpu.registers.write("rsp", STACK_TOP - 0x100)
        self.cpu.registers.write("rbp", STACK_TOP - 0x100)

    def run(self, entry: str, args=()):
        return self.cpu.call_function(entry, args)


@pytest.fixture
def asm():
    """Factory fixture: ``asm(source)`` returns an :class:`AsmHarness`."""
    return AsmHarness
