"""TLS layout and typed accessors."""

from repro.machine.memory import TLS_BASE, standard_memory
from repro.machine.tls import (
    CANARY_OFFSET,
    SHADOW_C0_OFFSET,
    SHADOW_C1_OFFSET,
    TLS_MIN_SIZE,
    TlsView,
)


class TestOffsets:
    def test_paper_offsets(self):
        # §V-A pins these: canary at fs:0x28, shadow pair at fs:0x2a8+.
        assert CANARY_OFFSET == 0x28
        assert SHADOW_C0_OFFSET == 0x2A8
        assert SHADOW_C1_OFFSET == 0x2B0

    def test_min_size_covers_all_slots(self):
        assert TLS_MIN_SIZE > SHADOW_C1_OFFSET + 8


class TestTlsView:
    def setup_method(self):
        self.memory = standard_memory()
        self.tls = TlsView(self.memory, TLS_BASE)

    def test_canary_roundtrip(self):
        self.tls.canary = 0x1234
        assert self.tls.canary == 0x1234
        assert self.memory.read_word(TLS_BASE + CANARY_OFFSET) == 0x1234

    def test_shadow_pair_roundtrip(self):
        self.tls.shadow_c0 = 0xAAAA
        self.tls.shadow_c1 = 0xBBBB
        assert (self.tls.shadow_c0, self.tls.shadow_c1) == (0xAAAA, 0xBBBB)

    def test_shadow_slots_are_distinct_from_canary(self):
        self.tls.canary = 1
        self.tls.shadow_c0 = 2
        self.tls.shadow_c1 = 3
        assert self.tls.canary == 1

    def test_dynaguard_slots(self):
        self.tls.cab_base = 0x8000
        self.tls.cab_index = 5
        assert (self.tls.cab_base, self.tls.cab_index) == (0x8000, 5)

    def test_dcr_head(self):
        self.tls.dcr_head = 0x7FFF0
        assert self.tls.dcr_head == 0x7FFF0

    def test_global_buffer_slots(self):
        self.tls.global_buffer_base = 0x9000
        self.tls.global_buffer_count = 2
        assert self.tls.global_buffer_base == 0x9000
        assert self.tls.global_buffer_count == 2
