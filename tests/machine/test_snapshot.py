"""Machine images: determinism, bit-identical restore, typed failures."""

import pytest

from repro.core.deploy import build, deploy, get_scheme
from repro.errors import SnapshotError
from repro.kernel.kernel import Kernel
from repro.machine.debug import architectural_snapshot, snapshot_divergences
from repro.machine.snapshot import (
    SNAPSHOT_VERSION,
    dump_spawn_image,
    load_spawn_image,
    prepare_spawn_image,
    restore_process,
    snapshot_process,
    verify_roundtrip,
)

WORKLOAD = """
int handler(int n) {
    char buf[32];
    read(0, buf, 16);
    puts(buf);
    return n + 1;
}
int main() { return handler(1); }
"""

FORKER = """
int main() {
    int pid;
    pid = fork();
    if (pid == 0) {
        return 7;
    }
    return 0;
}
"""


def deployed(source=WORKLOAD, scheme="pssp", seed=404, run=True):
    binary = build(source, scheme, name="snap")
    kernel = Kernel(seed)
    process, _ = deploy(kernel, binary, scheme)
    if run:
        process.feed_stdin(b"snapshot-under-test\n")
        process.run()
    return process


class TestRoundtrip:
    def test_restore_is_bit_identical(self):
        process = deployed()
        assert verify_roundtrip(process) == []

    def test_roundtrip_before_any_run(self):
        process = deployed(run=False)
        assert verify_roundtrip(process) == []

    @pytest.mark.parametrize(
        "scheme", ["none", "ssp", "pssp", "pssp-owf", "dynaguard", "dcr"]
    )
    def test_roundtrip_across_schemes(self, scheme):
        process = deployed(scheme=scheme)
        assert verify_roundtrip(process) == []

    def test_restored_process_runs_identically(self):
        process = deployed()
        restored = restore_process(process.snapshot())
        r1 = process.call("handler", (5,))
        r2 = restored.call("handler", (5,))
        assert (r1.state, r1.exit_status) == (r2.state, r2.exit_status)
        assert snapshot_divergences(
            architectural_snapshot(process), architectural_snapshot(restored)
        ) == []

    def test_resnapshot_is_byte_identical(self):
        process = deployed()
        image = process.snapshot()
        assert restore_process(image).snapshot() == image


class TestForkBoundary:
    def test_fork_after_restore_replays_rerandomization(self):
        process = deployed()
        restored = restore_process(process.snapshot())
        child = process.kernel.fork(process)
        restored_child = restored.kernel.fork(restored)
        # Same entropy stream, same TSC epoch, same shadow refresh: the
        # re-randomization boundary is bit-exact across restore.
        assert snapshot_divergences(
            architectural_snapshot(child),
            architectural_snapshot(restored_child),
        ) == []
        assert child.tls.canary == restored_child.tls.canary
        assert child.tls.shadow_c0 == restored_child.tls.shadow_c0

    def test_simulated_fork_program_replays(self):
        process = deployed(FORKER, run=False)
        restored = restore_process(process.snapshot())
        r1, r2 = process.run(), restored.run()
        assert (r1.state, r1.exit_status) == (r2.state, r2.exit_status)
        assert snapshot_divergences(
            architectural_snapshot(process), architectural_snapshot(restored)
        ) == []


class TestDeterminism:
    def test_snapshot_twice_same_bytes(self):
        process = deployed()
        assert process.snapshot() == process.snapshot()

    def test_identical_histories_identical_images(self):
        a, b = deployed(seed=7), deployed(seed=7)
        assert a.snapshot() == b.snapshot()

    def test_different_seeds_different_images(self):
        a, b = deployed(seed=7), deployed(seed=8)
        assert a.snapshot() != b.snapshot()


class TestRestoreIntoLiveKernel:
    def test_kernel_restore_adopts_the_image_timeline(self):
        process = deployed()
        kernel = Kernel(99)
        restored = kernel.restore(process.snapshot())
        assert restored.pid == process.pid
        assert restored.pid in kernel.processes
        # Adopted bookkeeping: forks off the restored process replay the
        # original timeline bit-for-bit.
        assert kernel.fork(restored).tls.canary == (
            process.kernel.fork(process).tls.canary
        )

    def test_graft_restore_allocates_a_fresh_pid(self):
        process = deployed()
        kernel = Kernel(99)
        # Spawn something first so the original pid is taken.
        other = deploy(kernel, build(WORKLOAD, "pssp", name="snap"), "pssp")[0]
        assert other.pid == process.pid
        restored = restore_process(
            process.snapshot(), kernel=kernel, adopt_kernel_state=False
        )
        assert restored.pid != other.pid
        assert kernel.processes[restored.pid] is restored

    def test_adopting_restore_keeps_the_original_pid(self):
        process = deployed()
        restored = restore_process(process.snapshot())
        assert restored.pid == process.pid


class TestTypedFailures:
    def test_running_process_refuses(self):
        process = deployed(run=False)
        process.state = "running"
        with pytest.raises(SnapshotError):
            snapshot_process(process)

    def test_threaded_process_refuses(self):
        process = deployed()
        process.threads.append(object())
        with pytest.raises(SnapshotError):
            snapshot_process(process)

    def test_bad_magic_rejected(self):
        with pytest.raises(SnapshotError):
            restore_process(b"NOTSNAP 1 process\n2\n{}\n")

    def test_version_skew_rejected(self):
        process = deployed()
        image = process.snapshot()
        skewed = image.replace(
            b"PSSPSNAP %d" % SNAPSHOT_VERSION, b"PSSPSNAP 9999", 1
        )
        with pytest.raises(SnapshotError):
            restore_process(skewed)

    def test_truncated_image_rejected(self):
        process = deployed()
        image = process.snapshot()
        with pytest.raises(SnapshotError):
            restore_process(image[: len(image) // 2])

    def test_corrupt_page_rejected(self):
        process = deployed()
        image = process.snapshot()
        # Flip a byte in the page blob (the tail), leaving the header
        # intact: content addressing must catch it.
        corrupt = image[:-1] + bytes([image[-1] ^ 0xFF])
        with pytest.raises(SnapshotError):
            restore_process(corrupt)

    def test_wrong_kind_rejected(self):
        process = deployed()
        with pytest.raises(SnapshotError):
            load_spawn_image(process.snapshot())


class TestSpawnImage:
    def test_warm_spawn_equals_cold_spawn(self):
        binary = build(WORKLOAD, "pssp", name="snap")
        spec = get_scheme("pssp")

        def boot(image=None, seed=31):
            kernel = Kernel(seed)
            runtime = spec.make_runtime()
            from repro.libc.builtins import build_natives

            process = kernel.spawn(
                binary,
                preloads=runtime.preload_binaries(),
                natives=build_natives(),
                dbi_multiplier=spec.dbi_multiplier,
                image=image,
            )
            runtime.install(process)
            return process

        cold = boot()
        image = prepare_spawn_image(
            binary,
            preloads=get_scheme("pssp").make_runtime().preload_binaries(),
        )
        warm = boot(image)
        assert snapshot_divergences(
            architectural_snapshot(cold), architectural_snapshot(warm)
        ) == []
        cold.feed_stdin(b"abc\n")
        warm.feed_stdin(b"abc\n")
        cold.run()
        warm.run()
        assert snapshot_divergences(
            architectural_snapshot(cold), architectural_snapshot(warm)
        ) == []

    def test_spawn_image_serialization_roundtrip(self):
        binary = build(WORKLOAD, "pssp", name="snap")
        image = prepare_spawn_image(binary)
        blob = dump_spawn_image(image)
        assert blob == dump_spawn_image(image)
        loaded = load_spawn_image(blob)
        assert dump_spawn_image(loaded) == blob

    def test_one_image_serves_many_seeds(self):
        binary = build(WORKLOAD, "pssp", name="snap")
        image = prepare_spawn_image(binary)
        canaries = set()
        for seed in (1, 2, 3):
            kernel = Kernel(seed)
            process = kernel.spawn(binary, image=image)
            canaries.add(process.tls.canary)
        assert len(canaries) == 3

    def test_instantiations_are_isolated(self):
        binary = build(WORKLOAD, "pssp", name="snap")
        image = prepare_spawn_image(binary)
        kernel = Kernel(5)
        a = kernel.spawn(binary, image=image)
        b = kernel.spawn(binary, image=image)
        a.memory.write_word(a.memory.segment("heap").base, 123)
        assert b.memory.read_word(b.memory.segment("heap").base) == 0
