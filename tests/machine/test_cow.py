"""Copy-on-write paging: sharing, isolation, lanes, and accounting."""

import pytest

from repro.machine.memory import (
    HEAP_BASE,
    PAGE,
    Memory,
    Segment,
    cow_enabled,
    standard_memory,
)


@pytest.fixture
def memory():
    return standard_memory()


class TestIsolation:
    def test_child_write_invisible_to_parent(self, memory):
        memory.write_word(HEAP_BASE, 11)
        child = memory.clone()
        child.write_word(HEAP_BASE, 22)
        assert memory.read_word(HEAP_BASE) == 11
        assert child.read_word(HEAP_BASE) == 22

    def test_parent_write_invisible_to_child(self, memory):
        memory.write_word(HEAP_BASE, 11)
        child = memory.clone()
        memory.write_word(HEAP_BASE, 33)
        assert child.read_word(HEAP_BASE) == 11
        assert memory.read_word(HEAP_BASE) == 33

    def test_both_sides_diverge_from_one_shared_page(self, memory):
        memory.write(HEAP_BASE, b"base")
        child = memory.clone()
        grandchild = child.clone()
        memory.write(HEAP_BASE, b"prnt")
        child.write(HEAP_BASE, b"chld")
        assert memory.read(HEAP_BASE, 4) == b"prnt"
        assert child.read(HEAP_BASE, 4) == b"chld"
        assert grandchild.read(HEAP_BASE, 4) == b"base"

    def test_write_through_cached_lane_after_clone_is_private(self, memory):
        # Prime the write lane, clone, then write through the same lane
        # address range: the clone must not observe the write.
        memory.write_word(HEAP_BASE, 1)
        child = memory.clone()
        memory.write_word(HEAP_BASE + 8, 2)
        assert child.read_word(HEAP_BASE + 8) == 0

    def test_read_lane_repointed_after_write_fault(self, memory):
        child = memory.clone()
        # Read primes the rlane onto the shared frozen page...
        assert memory.read_word(HEAP_BASE) == 0
        # ...the write faults a private copy; the next read must see it.
        memory.write_word(HEAP_BASE, 77)
        assert memory.read_word(HEAP_BASE) == 77
        assert child.read_word(HEAP_BASE) == 0

    def test_page_straddling_write_isolated(self, memory):
        boundary = HEAP_BASE + PAGE - 4
        memory.write(boundary, b"\x01" * 8)
        child = memory.clone()
        child.write(boundary, b"\x02" * 8)
        assert memory.read(boundary, 8) == b"\x01" * 8
        assert child.read(boundary, 8) == b"\x02" * 8

    def test_straddling_write_then_lane_read_sees_fresh_bytes(self, memory):
        # A straddling write bypasses the lanes; a subsequent fast-path
        # read must not serve a stale cached page.
        assert memory.read_word(HEAP_BASE + PAGE) == 0  # prime rlane
        memory.write(HEAP_BASE + PAGE - 4, b"\xAB" * 8)
        assert memory.read(HEAP_BASE + PAGE, 4) == b"\xAB" * 4


class TestSharing:
    def test_untouched_pages_are_shared_not_copied(self, memory):
        child = memory.clone()
        stats = child.page_stats()
        assert stats["private_pages"] == 0
        assert stats["shared_pages"] == stats["pages"]

    def test_readonly_segment_shares_outright(self):
        memory = Memory()
        blob = bytearray(b"\x90" * (2 * PAGE))
        memory.map_segment(
            Segment("code", 0x1000, 2 * PAGE, writable=False, data=blob)
        )
        child = memory.clone()
        original = memory.segment("code")
        twin = child.segment("code")
        assert original.immutable and twin.immutable
        # Same frozen page tuple: zero pages were duplicated.
        assert twin._source is original._source
        assert twin.private_pages == 0

    def test_zero_pages_deduplicate(self):
        memory = Memory()
        memory.map_segment(Segment("big", 0x10000, 64 * PAGE))
        pages = memory.segment("big")._source
        assert len({id(page) for page in pages}) == 1

    def test_clone_cost_is_dirty_pages_not_size(self, memory):
        memory.clone()  # freezes everything
        memory.write_word(HEAP_BASE, 5)  # dirties exactly one page
        child = memory.clone()
        # The child overlay holds only the one re-frozen page.
        assert child.page_stats()["overlay_pages"] == 1

    def test_eager_clone_fully_materialises(self, memory):
        memory.write_word(HEAP_BASE, 9)
        child = memory.clone(eager=True)
        child.write_word(HEAP_BASE, 10)
        assert memory.read_word(HEAP_BASE) == 9
        heap = child.segment("heap")
        assert heap._source is not memory.segment("heap")._source


class TestEquivalence:
    def test_cow_and_eager_clones_read_identically(self, memory):
        for offset in (0, 7, PAGE - 1, PAGE, 3 * PAGE + 5):
            memory.write_byte(HEAP_BASE + offset, 0x5A)
        cow = memory.clone(eager=False)
        eager = memory.clone(eager=True)
        for segment in memory.segments():
            assert (
                cow.segment(segment.name).tobytes()
                == eager.segment(segment.name).tobytes()
                == segment.tobytes()
            )

    def test_env_knob_forces_eager(self, monkeypatch):
        monkeypatch.setenv("REPRO_COW_FORK", "0")
        assert not cow_enabled()
        memory = standard_memory()
        memory.write_word(HEAP_BASE, 4)
        child = memory.clone()
        # Deep copy: no page tuple is shared with the parent...
        heap = memory.segment("heap")
        assert child.segment("heap")._source is not heap._source
        # ...and the parent keeps private pages (no freeze happened).
        assert memory.page_stats()["private_pages"] == 1
        monkeypatch.setenv("REPRO_COW_FORK", "1")
        assert cow_enabled()


class TestAccounting:
    def test_page_stats_track_write_faults(self, memory):
        child = memory.clone()
        before = child.page_stats()["private_pages"]
        child.write_word(HEAP_BASE, 1)
        child.write_word(HEAP_BASE + 8, 2)  # same page: one fault
        child.write_word(HEAP_BASE + PAGE, 3)  # second page
        after = child.page_stats()["private_pages"]
        assert after - before == 2

    def test_freeze_makes_all_pages_shareable(self, memory):
        memory.write_word(HEAP_BASE, 1)
        memory.freeze()
        assert memory.page_stats()["private_pages"] == 0
        # Contents survive the freeze.
        assert memory.read_word(HEAP_BASE) == 1
