"""Differential test: the decode-cache fast path vs. the slow oracle.

The fast interpreter loop (``CPU._run_loop_fast``) pre-decodes function
bodies into bound closures and batches cycle accounting; the slow loop
(``CPU._run_loop_slow``) re-dispatches every step.  These tests run the
same workloads down both paths and demand *bit-identical* observable
state: cycles, TSC, instruction counts, exit status, register file, and
the full memory image.  Any specialisation bug in the decoder shows up
here as a divergence.
"""

import pytest

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel
from repro.machine.debug import architectural_snapshot, snapshot_divergences

#: A canary-heavy workload: P-SSP-OWF prologues read ``rdtsc`` (so exact
#: TSC flushing is exercised), call the AES native helper (native-cost
#: charging mid-batch), and the recursion spreads frames across the stack.
CANARY_HEAVY = """
int leaf(int n) {
    char buf[32];
    buf[0] = n;
    return buf[0] + 1;
}

int fan(int depth) {
    int total; int i;
    total = 0;
    if (depth > 0) {
        total = total + fan(depth - 1);
    }
    for (i = 0; i < 8; i = i + 1) {
        total = total + leaf(i);
    }
    return total;
}

int main() { return fan(6); }
"""

#: Branch- and memory-heavy compute loop with div/mul and byte traffic.
COMPUTE = """
int work(int n) {
    char scratch[64];
    int acc; int i;
    acc = 1;
    for (i = 0; i < n; i = i + 1) {
        scratch[i - (i / 64) * 64] = i;
        acc = acc + i * 3 - (acc / 7);
        if (acc > 100000) {
            acc = acc - 100000;
        }
    }
    return acc + scratch[13];
}
int main() { return work(3000); }
"""


def run_both(source: str, scheme: str, *, seed: int = 2018):
    """Run ``source`` under ``scheme`` on the fast and slow paths."""
    results = []
    for fast in (True, False):
        kernel = Kernel(seed=seed)
        binary = build(source, scheme, name="diff")
        process, _ = deploy(kernel, binary, scheme, fast=fast)
        result = process.run()
        results.append((process, result))
    return results


def assert_identical(fast_pair, slow_pair) -> None:
    fast_process, fast_result = fast_pair
    slow_process, slow_result = slow_pair
    assert fast_result.cycles == slow_result.cycles
    assert fast_result.instructions == slow_result.instructions
    divergences = snapshot_divergences(
        architectural_snapshot(fast_process), architectural_snapshot(slow_process)
    )
    assert not divergences, divergences


class TestFastSlowEquivalence:
    @pytest.mark.parametrize(
        "scheme", ["none", "ssp", "pssp", "pssp-nt", "pssp-lv", "pssp-owf"]
    )
    def test_canary_heavy_workload_identical(self, scheme):
        fast, slow = run_both(CANARY_HEAVY, scheme)
        assert_identical(fast, slow)

    @pytest.mark.parametrize("scheme", ["none", "pssp-owf"])
    def test_compute_workload_identical(self, scheme):
        fast, slow = run_both(COMPUTE, scheme)
        assert_identical(fast, slow)

    def test_overflow_detection_identical(self):
        """A smashed canary must abort identically on both paths."""
        source = """
        int victim(int n) {
            char buf[16];
            int i;
            for (i = 0; i < n; i = i + 1) {
                buf[i] = 65;
            }
            return 0;
        }
        int main() { return victim(64); }
        """
        fast, slow = run_both(source, "pssp")
        assert fast[1].crashed and slow[1].crashed
        assert fast[1].smashed == slow[1].smashed
        assert fast[1].signal == slow[1].signal
        assert fast[1].cycles == slow[1].cycles
        assert fast[1].instructions == slow[1].instructions

    def test_cycle_limit_trips_identically(self):
        """The batched limit check must fire on the same instruction."""
        source = """
        int main() {
            int i;
            i = 0;
            for (;;) {
                i = i + 1;
            }
            return i;
        }
        """
        pairs = []
        for fast_flag in (True, False):
            kernel = Kernel(seed=7)
            binary = build(source, "none", name="spin")
            process, _ = deploy(
                kernel, binary, "none", cycle_limit=25_000, fast=fast_flag
            )
            result = process.run()
            assert result.signal == "SIGXCPU"
            pairs.append((process.cpu.cycles, process.cpu.tsc.value,
                          process.cpu.instructions_executed))
        assert pairs[0] == pairs[1]

    def test_forking_server_identical(self):
        """Fork inherits the fast flag; children must match the oracle."""
        source = """
        int handler(int n) {
            char buf[24];
            buf[0] = n;
            return buf[0] * 2;
        }

        int main() {
            int pid; int total; int i;
            total = 0;
            for (i = 0; i < 3; i = i + 1) {
                pid = fork();
                if (pid == 0) {
                    return handler(i + 1);
                }
            }
            return total;
        }
        """
        outcomes = []
        for fast in (True, False):
            kernel = Kernel(seed=99)
            binary = build(source, "pssp", name="forker")
            process, _ = deploy(kernel, binary, "pssp", fast=fast)
            result = process.run()
            children = [p for p in kernel.processes.values() if p.ppid == process.pid]
            outcomes.append(
                (
                    result.state,
                    result.exit_status,
                    result.cycles,
                    result.instructions,
                    sorted((c.exit_status, c.cpu.cycles) for c in children),
                )
            )
        assert outcomes[0] == outcomes[1]
