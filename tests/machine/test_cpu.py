"""CPU execution semantics, driven through assembled programs."""

import pytest

from repro.errors import (
    CpuLimitExceeded,
    DivisionFault,
    IllegalInstruction,
    InvalidJump,
)
from repro.machine.memory import TLS_BASE


class TestArithmetic:
    def test_mov_imm_and_return(self, asm):
        h = asm("f:\n mov rax, 42\n ret\n")
        assert h.run("f") == 42

    def test_add_sub(self, asm):
        h = asm("f:\n mov rax, 10\n add rax, 32\n sub rax, 2\n ret\n")
        assert h.run("f") == 40

    def test_xor_self_zeroes(self, asm):
        h = asm("f:\n mov rax, 123\n xor rax, rax\n ret\n")
        assert h.run("f") == 0

    def test_wraparound_64bit(self, asm):
        h = asm("f:\n mov rax, -1\n add rax, 2\n ret\n")
        assert h.run("f") == 1

    def test_shifts(self, asm):
        h = asm("f:\n mov rax, 1\n shl rax, 4\n shr rax, 1\n ret\n")
        assert h.run("f") == 8

    def test_imul(self, asm):
        h = asm("f:\n mov rax, 6\n mov rcx, 7\n imul rax, rcx\n ret\n")
        assert h.run("f") == 42

    def test_idiv_quotient_and_remainder(self, asm):
        h = asm("f:\n mov rax, 17\n mov rcx, 5\n idiv rcx\n ret\n")
        assert h.run("f") == 3
        assert h.cpu.registers.read("rdx") == 2

    def test_idiv_by_zero_faults(self, asm):
        h = asm("f:\n mov rax, 1\n mov rcx, 0\n idiv rcx\n ret\n")
        with pytest.raises(DivisionFault):
            h.run("f")

    def test_neg_not_inc_dec(self, asm):
        h = asm("f:\n mov rax, 5\n neg rax\n neg rax\n inc rax\n dec rax\n dec rax\n ret\n")
        assert h.run("f") == 4


class TestFlagsAndBranches:
    def test_je_taken_on_equal(self, asm):
        h = asm(
            "f:\n mov rax, 3\n cmp rax, 3\n je .eq\n mov rax, 0\n ret\n"
            ".eq:\n mov rax, 1\n ret\n"
        )
        assert h.run("f") == 1

    def test_signed_less_than(self, asm):
        h = asm(
            "f:\n mov rax, -5\n cmp rax, 3\n jl .lt\n mov rax, 0\n ret\n"
            ".lt:\n mov rax, 1\n ret\n"
        )
        assert h.run("f") == 1

    def test_unsigned_below(self, asm):
        # -5 as unsigned is huge, so NOT below 3.
        h = asm(
            "f:\n mov rax, -5\n cmp rax, 3\n jb .lt\n mov rax, 0\n ret\n"
            ".lt:\n mov rax, 1\n ret\n"
        )
        assert h.run("f") == 0

    def test_xor_sets_zero_flag(self, asm):
        # The SSP epilogue idiom: xor then je.
        h = asm(
            "f:\n mov rax, 7\n mov rcx, 7\n xor rax, rcx\n je .ok\n"
            " mov rax, 99\n ret\n.ok:\n mov rax, 1\n ret\n"
        )
        assert h.run("f") == 1

    def test_loop_with_jne(self, asm):
        h = asm(
            "f:\n mov rax, 0\n mov rcx, 0\n"
            ".loop:\n add rax, rcx\n inc rcx\n cmp rcx, 5\n jne .loop\n ret\n"
        )
        assert h.run("f") == 0 + 1 + 2 + 3 + 4

    def test_flags_survive_call_and_ret(self, asm):
        # The instrumented epilogue relies on ZF riding across ret.
        h = asm(
            "setz:\n cmp rax, rax\n ret\n"
            "f:\n mov rax, 5\n call setz\n je .ok\n mov rax, 0\n ret\n"
            ".ok:\n mov rax, 1\n ret\n"
        )
        assert h.run("f") == 1


class TestStackAndCalls:
    def test_push_pop(self, asm):
        h = asm("f:\n mov rax, 11\n push rax\n mov rax, 0\n pop rax\n ret\n")
        assert h.run("f") == 11

    def test_call_ret_roundtrip(self, asm):
        h = asm("g:\n mov rax, 9\n ret\nf:\n call g\n add rax, 1\n ret\n")
        assert h.run("f") == 10

    def test_arguments_via_registers(self, asm):
        h = asm("f:\n mov rax, rdi\n add rax, rsi\n ret\n")
        assert h.run("f", (30, 12)) == 42

    def test_frame_with_leave(self, asm):
        h = asm(
            "f:\n push rbp\n mov rbp, rsp\n sub rsp, 0x20\n"
            " mov [rbp-8], rdi\n mov rax, [rbp-8]\n leave\n ret\n"
        )
        assert h.run("f", (77,)) == 77

    def test_recursion(self, asm):
        # factorial(5) with an explicit stack frame.
        h = asm(
            "fact:\n push rbp\n mov rbp, rsp\n cmp rdi, 1\n jle .base\n"
            " push rdi\n sub rdi, 1\n call fact\n pop rdi\n imul rax, rdi\n"
            " leave\n ret\n"
            ".base:\n mov rax, 1\n leave\n ret\n"
        )
        assert h.run("fact", (5,)) == 120

    def test_corrupted_return_address_faults(self, asm):
        h = asm(
            "f:\n push rbp\n mov rbp, rsp\n mov rax, 0x41414141\n"
            " mov [rbp+8], rax\n pop rbp\n ret\n"
        )
        with pytest.raises(InvalidJump):
            h.run("f")

    def test_ret_to_instruction_boundary_succeeds(self, asm):
        # Overwrite the return address with a *valid* code address: the
        # control-flow hijack must succeed (that is what attackers do).
        # win halts rather than returning — the hijack destroyed the
        # genuine return linkage, as in a real exploit.
        h = asm(
            "win:\n mov rax, 57\n hlt\n"
            "f:\n push rbp\n mov rbp, rsp\n lea rax, win\n"
            " mov [rbp+8], rax\n pop rbp\n ret\n"
        )
        assert h.run("f") == 57


class TestMemoryOperands:
    def test_tls_access(self, asm):
        h = asm("f:\n mov rax, fs:[0x28]\n ret\n")
        h.memory.write_word(TLS_BASE + 0x28, 0x5EC2E7)
        assert h.run("f") == 0x5EC2E7

    def test_indexed_addressing(self, asm):
        h = asm(
            "f:\n mov rcx, rdi\n mov rdx, 2\n mov rax, [rcx+rdx*8]\n ret\n"
        )
        base = h.memory.segment("heap").base
        h.memory.write_word(base + 16, 555)
        assert h.run("f", (base,)) == 555

    def test_byte_ops(self, asm):
        h = asm(
            "f:\n movb [rdi], rsi\n movzxb rax, [rdi]\n ret\n"
        )
        base = h.memory.segment("heap").base
        assert h.run("f", (base, 0x1FF)) == 0xFF  # only the low byte lands

    def test_lea_computes_without_access(self, asm):
        h = asm("f:\n lea rax, [rdi+24]\n ret\n")
        assert h.run("f", (100,)) == 124


class TestSpecialInstructions:
    def test_rdrand_sets_carry_and_value(self, asm):
        h = asm("f:\n rdrand rax\n ret\n")
        value = h.run("f")
        assert h.cpu.registers.cf is True
        assert 0 <= value < 2**64

    def test_rdrand_draws_differ(self, asm):
        h = asm("f:\n rdrand rax\n ret\n")
        assert h.run("f") != h.run("f")

    def test_rdtsc_monotonic(self, asm):
        h = asm("f:\n rdtsc\n shl rdx, 32\n or rax, rdx\n ret\n")
        first = h.run("f")
        second = h.run("f")
        assert second > first

    def test_xmm_pack_and_compare(self, asm):
        h = asm(
            "f:\n mov rax, 7\n movq xmm15, rax\n mov rcx, 9\n"
            " movhps xmm1, rcx\n movq xmm1, rax\n punpckhdq xmm1, rcx\n"
            " comiss xmm15, xmm15\n je .same\n mov rax, 0\n ret\n"
            ".same:\n movq rax, xmm1\n ret\n"
        )
        assert h.run("f") == 7
        assert h.cpu.registers.read("xmm1") == (9 << 64) | 7

    def test_movdqu_roundtrip(self, asm):
        h = asm(
            "f:\n mov rax, 1\n movq xmm15, rax\n mov rcx, 2\n"
            " punpckhdq xmm15, rcx\n movdqu [rdi], xmm15\n"
            " pxor xmm15, xmm15\n movdqu xmm15, [rdi]\n movq rax, xmm15\n ret\n"
        )
        base = asm_base = h.memory.segment("heap").base
        assert h.run("f", (base,)) == 1
        assert h.memory.read_word(asm_base + 8) == 2

    def test_raw_syscall_is_illegal(self, asm):
        h = asm("f:\n syscall\n ret\n")
        with pytest.raises(IllegalInstruction):
            h.run("f")


class TestLimitsAndAccounting:
    def test_cycle_limit(self, asm):
        h = asm("f:\n.spin:\n jmp .spin\n")
        h.cpu.cycle_limit = 1000
        with pytest.raises(CpuLimitExceeded):
            h.run("f")

    def test_cycles_accumulate(self, asm):
        h = asm("f:\n mov rax, 1\n ret\n")
        h.run("f")
        assert h.cpu.cycles > 0
        assert h.cpu.instructions_executed == 2

    def test_dbi_multiplier_scales_cycles(self, asm):
        plain = asm("f:\n mov rax, 1\n ret\n")
        plain.run("f")
        taxed = asm("f:\n mov rax, 1\n ret\n")
        taxed.cpu.dbi_multiplier = 2.0
        taxed.run("f")
        assert taxed.cpu.cycles == pytest.approx(2.0 * plain.cpu.cycles)

    def test_run_off_function_end_faults(self, asm):
        h = asm("f:\n nop\n")
        with pytest.raises(InvalidJump):
            h.run("f")
