"""Trace-JIT tier: superblock formation, exactness, and invalidation.

The JIT (``repro.machine.jit``) compiles hot straight-line runs of
decoded steps into single Python functions.  Its whole contract is
*observational equivalence*: with the tier on, off (``REPRO_JIT=0``),
or absent (the slow oracle), every run must produce bit-identical
architectural state — including mid-block faults, cycle-limit trips,
and every invalidation boundary (decode-cache flush, image patching,
snapshot restore, fork).
"""

import warnings

import pytest

from repro import telemetry
from repro.core.deploy import build, deploy
from repro.errors import MachineFault
from repro.kernel.kernel import Kernel
from repro.machine import jit
from repro.machine.cpu import NativeFunction
from repro.machine.debug import architectural_snapshot, snapshot_divergences
from repro.machine.snapshot import restore_process

#: Enough arrivals at a back-edge to cross the compile threshold.
HOT = jit.HOT_THRESHOLD * 4


def hot_loop(body: str, n: int = HOT) -> str:
    """A counted loop whose back-edge target gets hot."""
    return (
        "f:\n mov rax, 0\n mov rcx, 0\n"
        f".loop:\n{body}"
        f" inc rcx\n cmp rcx, {n}\n jne .loop\n ret\n"
    )


def run_config(asm, source, *, fast, jit_on, entry="f", args=()):
    """Run ``source`` on one interpreter configuration."""
    h = asm(source)
    h.cpu.fast = fast
    h.cpu.jit = jit_on
    fault = None
    value = None
    try:
        value = h.run(entry, args)
    except MachineFault as exc:
        fault = exc
    return h, value, fault


def assert_state_identical(a, b) -> None:
    """Full architectural-state comparison between two harness CPUs."""
    assert a.cpu.cycles == b.cpu.cycles
    assert a.cpu.instructions_executed == b.cpu.instructions_executed
    assert a.cpu.tsc.value == b.cpu.tsc.value
    assert a.cpu.registers.gpr == b.cpu.registers.gpr
    for flag in ("zf", "sf", "cf"):
        assert getattr(a.cpu.registers, flag) == getattr(b.cpu.registers, flag)


def compiled_blocks(h, name="f"):
    """The non-None superblocks compiled for function ``name``."""
    decoded = h.cpu._decode_cache.get(name)
    if decoded is None:
        return {}
    return {
        index: sb
        for index, sb in decoded.jit_blocks.items()
        if sb is not None
    }


class TestSuperblockFormation:
    def test_hot_loop_compiles_and_matches_slow(self, asm):
        source = hot_loop(" add rax, 3\n")
        slow, slow_value, _ = run_config(asm, source, fast=False, jit_on=False)
        nojit, nojit_value, _ = run_config(asm, source, fast=True, jit_on=False)
        jitted, jit_value, _ = run_config(asm, source, fast=True, jit_on=True)
        assert slow_value == nojit_value == jit_value == 3 * HOT
        assert_state_identical(jitted, slow)
        assert_state_identical(nojit, slow)
        assert compiled_blocks(jitted), "hot back-edge never compiled"
        assert not compiled_blocks(nojit), "jit_on=False must stay cold"

    def test_cold_code_never_compiles(self, asm):
        source = hot_loop(" add rax, 1\n", n=jit.HOT_THRESHOLD // 2)
        jitted, _, _ = run_config(asm, source, fast=True, jit_on=True)
        assert not compiled_blocks(jitted)
        # ... but the profiler did count the arrivals.
        assert jitted.cpu._decode_cache["f"].jit_counts

    def test_repro_jit_env_disables_tier(self, asm, monkeypatch):
        monkeypatch.setenv(jit.ENV_FLAG, "0")
        assert not jit.jit_enabled()
        source = hot_loop(" add rax, 2\n")
        h = asm(source)  # CPU constructed after the env flip
        assert h.cpu.jit is False
        value = h.run("f")
        assert value == 2 * HOT
        assert not compiled_blocks(h)
        assert not h.cpu._decode_cache["f"].jit_counts

    def test_unconditional_jmp_is_inlined(self, asm):
        # The back-edge is an unconditional jmp; the trace walker follows
        # it instead of side-exiting, so one superblock spans the whole
        # loop body plus the head's exit test.
        source = (
            "f:\n mov rax, 0\n mov rcx, 0\n"
            f".head:\n cmp rcx, {HOT}\n je .done\n"
            " add rax, 5\n inc rcx\n jmp .head\n"
            ".done:\n ret\n"
        )
        slow, slow_value, _ = run_config(asm, source, fast=False, jit_on=False)
        jitted, jit_value, _ = run_config(asm, source, fast=True, jit_on=True)
        assert slow_value == jit_value == 5 * HOT
        assert_state_identical(jitted, slow)
        blocks = compiled_blocks(jitted)
        assert blocks
        # The body anchor (fallthrough of the je) stitched add/inc across
        # the jmp into the head's cmp/je: five steps, conditional terminal.
        spanning = max(sb.count for sb in blocks.values())
        assert spanning == 5
        widest = next(sb for sb in blocks.values() if sb.count == 5)
        assert widest.terminal

    def test_sync_step_ends_trace(self, asm):
        # rdtsc needs exact accounting, so the walk stops in front of it:
        # the block is non-terminal and side-exits back to the step loop.
        source = hot_loop(" add rbx, 7\n mov rdx, rbx\n rdtsc\n")
        slow, _, _ = run_config(asm, source, fast=False, jit_on=False)
        jitted, _, _ = run_config(asm, source, fast=True, jit_on=True)
        assert_state_identical(jitted, slow)
        blocks = compiled_blocks(jitted)
        assert blocks
        assert any(not sb.terminal for sb in blocks.values())

    def test_dbi_scaled_costs_reject_compilation(self, asm):
        # Non-integral step costs make batched accounting drift by ULPs;
        # such anchors must be rejected (cached as None), never compiled.
        source = hot_loop(" add rax, 3\n")
        jitted = asm(source)
        jitted.cpu.jit = True
        jitted.cpu.dbi_multiplier = 1.22
        slow = asm(source)
        slow.cpu.fast = False
        slow.cpu.dbi_multiplier = 1.22
        assert jitted.run("f") == slow.run("f")
        assert_state_identical(jitted, slow)
        decoded = jitted.cpu._decode_cache["f"]
        assert decoded.jit_blocks, "anchors must be probed and cached"
        assert all(sb is None for sb in decoded.jit_blocks.values())


class TestSuperblockExactness:
    def test_fault_mid_block_matches_slow(self, asm):
        # The stored-to address walks off the end of the heap while the
        # loop is compiled, so the fault fires *inside* a superblock at a
        # position > 0.  Recovery must leave the exact state the step
        # loop would have: rip on the faulting step, accounting through
        # it, and every preceding register effect applied.
        def faulting_source(h_probe):
            heap = h_probe.memory.segment("heap")
            start = heap.end - 8 * (HOT // 2)
            return (
                f"f:\n mov rax, 0\n mov rcx, 0\n mov rbx, {start}\n"
                ".loop:\n inc rax\n mov [rbx], rcx\n add rbx, 8\n"
                " inc rcx\n cmp rcx, 100000\n jne .loop\n ret\n"
            )

        probe = asm("f:\n ret\n")
        source = faulting_source(probe)
        slow, _, slow_fault = run_config(asm, source, fast=False, jit_on=False)
        jitted, _, jit_fault = run_config(asm, source, fast=True, jit_on=True)
        assert slow_fault is not None and jit_fault is not None
        assert type(slow_fault) is type(jit_fault)
        assert compiled_blocks(jitted), "loop must be hot before the fault"
        assert jitted.cpu.registers.rip == slow.cpu.registers.rip
        assert_state_identical(jitted, slow)

    def test_cycle_limit_trips_identically_on_hot_loop(self):
        source = """
        int main() {
            int i;
            i = 0;
            for (;;) {
                i = i + 1;
            }
            return i;
        }
        """
        outcomes = []
        for fast, jit_on in ((False, False), (True, False), (True, True)):
            kernel = Kernel(seed=7)
            binary = build(source, "none", name="spin")
            process, _ = deploy(
                kernel, binary, "none", cycle_limit=25_000, fast=fast
            )
            process.cpu.jit = jit_on
            result = process.run()
            assert result.signal == "SIGXCPU"
            if jit_on:
                decoded = process.cpu._decode_cache["main"]
                assert any(
                    sb is not None for sb in decoded.jit_blocks.values()
                ), "the spin loop must have compiled before the trip"
            outcomes.append(
                (
                    process.cpu.cycles,
                    process.cpu.tsc.value,
                    process.cpu.instructions_executed,
                    process.registers.rip,
                )
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_canary_smash_detected_identically_in_hot_loop(self):
        # The overflowing store loop runs long enough to compile; the
        # smash must abort with identical state down all three paths.
        source = """
        int victim(int n) {
            char buf[16];
            int i;
            for (i = 0; i < n; i = i + 1) {
                buf[i] = 65;
            }
            return 0;
        }
        int main() { return victim(120); }
        """
        snaps = []
        for fast, jit_on in ((False, False), (True, False), (True, True)):
            kernel = Kernel(seed=2018)
            binary = build(source, "pssp", name="smash")
            process, _ = deploy(kernel, binary, "pssp", fast=fast)
            process.cpu.jit = jit_on
            result = process.run()
            assert result.crashed and result.smashed
            snaps.append(architectural_snapshot(process))
        assert not snapshot_divergences(snaps[0], snaps[2])
        assert not snapshot_divergences(snaps[1], snaps[2])

    @pytest.mark.parametrize("scheme", ["none", "ssp", "pssp", "pssp-owf"])
    def test_call_dense_workload_identical(self, scheme):
        source = """
        int leaf(int n) {
            char buf[16];
            buf[0] = n;
            return buf[0] + 1;
        }
        int main() {
            int total; int i;
            total = 0;
            for (i = 0; i < 200; i = i + 1) {
                total = total + leaf(i - (i / 100) * 100);
            }
            return total - (total / 256) * 256;
        }
        """
        snaps = []
        for fast, jit_on in ((False, False), (True, True)):
            kernel = Kernel(seed=5)
            binary = build(source, scheme, name="calls")
            process, _ = deploy(kernel, binary, scheme, fast=fast)
            process.cpu.jit = jit_on
            result = process.run()
            assert not result.crashed
            snaps.append(architectural_snapshot(process))
        assert not snapshot_divergences(snaps[0], snaps[1])


class TestPeephole:
    """The optimiser is textual; assert directly on the generated source."""

    def _widest_block(self, h):
        blocks = compiled_blocks(h)
        assert blocks
        return max(blocks.values(), key=lambda sb: sb.count)

    def test_redundant_flag_stores_elided(self, asm):
        # inc rax / inc rbx / cmp all write zf+sf with no observer in
        # between: only the cmp's stores (live at the jne) survive.
        source = hot_loop(" inc rax\n inc rbx\n")
        slow, _, _ = run_config(asm, source, fast=False, jit_on=False)
        jitted, _, _ = run_config(asm, source, fast=True, jit_on=True)
        assert_state_identical(jitted, slow)
        sb = self._widest_block(jitted)
        assert sb.source.count("R.zf =") == 1
        assert sb.source.count("R.sf =") == 1

    def test_register_reads_forwarded(self, asm):
        # add reads rdx straight after the mov wrote it: the generated
        # code must reuse the stored temp, never re-read g['rdx'].
        source = hot_loop(" mov rdx, rcx\n add rdx, 3\n")
        slow, _, _ = run_config(asm, source, fast=False, jit_on=False)
        jitted, _, _ = run_config(asm, source, fast=True, jit_on=True)
        assert_state_identical(jitted, slow)
        sb = self._widest_block(jitted)
        writes = sb.source.count("g['rdx'] =")
        assert writes == 2
        # Every other mention would be a read that escaped forwarding.
        assert sb.source.count("g['rdx']") == writes

    def test_push_pop_pair_forwards_value(self, asm):
        # pop's value provably comes from the push: no stack re-read
        # (rd) is emitted, but the push's store (wr) stays so a fault in
        # between leaves the exact un-fused state.
        source = hot_loop(" push rcx\n pop rdx\n add rax, rdx\n")
        slow, slow_value, _ = run_config(asm, source, fast=False, jit_on=False)
        jitted, jit_value, _ = run_config(asm, source, fast=True, jit_on=True)
        assert slow_value == jit_value
        assert_state_identical(jitted, slow)
        sb = self._widest_block(jitted)
        assert "rd(" not in sb.source
        assert "wr(" in sb.source

    def test_memory_write_blocks_push_pop_pairing(self, asm):
        # An unpredictable store between push and pop may alias the
        # slot: the pop must re-read memory.
        source = hot_loop(
            " push rcx\n mov [rbp-32], rax\n pop rdx\n add rax, rdx\n"
        )
        slow, _, _ = run_config(asm, source, fast=False, jit_on=False)
        jitted, _, _ = run_config(asm, source, fast=True, jit_on=True)
        assert_state_identical(jitted, slow)
        sb = self._widest_block(jitted)
        assert "rd(" in sb.source


class TestTraceHookInteraction:
    """Satellite: mid-run trace-hook arming and the one-shot warning."""

    def _traced_source(self, n=HOT):
        # The native arms/disarms the trace hook when rcx == rdi, i.e.
        # mid-run, from inside simulated code.
        return (
            "f:\n mov rax, 0\n mov rcx, 0\n"
            ".loop:\n add rax, 2\n cmp rcx, rdi\n jne .skip\n"
            " call toggle_trace\n"
            f".skip:\n inc rcx\n cmp rcx, {n}\n jne .loop\n ret\n"
        )

    def _instrument(self, h, name="f"):
        """Wrap every compiled superblock to record entries + arm state."""
        entries = []
        decoded = h.cpu._decode_cache[name]
        for index, sb in decoded.jit_blocks.items():
            if sb is None:
                continue

            def wrapped(orig=sb.run, index=index, sb=sb):
                entries.append((index, h.cpu._trace is not None))
                return orig()

            sb.run = wrapped
        return entries

    def test_midrun_arm_stops_superblock_entries(self, asm):
        def toggle(cpu):
            cpu.trace = (lambda name, index, instruction: None)
            return 0

        h = asm(self._traced_source())
        h.cpu.jit = True
        h.cpu.natives["toggle_trace"] = NativeFunction("toggle_trace", toggle)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            # Warm run: rdi never matches, the loop gets hot and compiles.
            h.run("f", (HOT * 2,))
            entries = self._instrument(h)
            # Armed mid-run at iteration HOT//2: superblocks may run
            # before that dispatch, never after.
            h.cpu.trace = None
            h.run("f", (HOT // 2,))
        assert entries, "superblocks must have run before the arm"
        assert all(not armed for _, armed in entries), (
            "a superblock entered while the trace hook was armed"
        )
        assert h.cpu._trace is not None

    def test_disarm_resumes_superblock_entries(self, asm):
        def toggle(cpu):
            cpu.trace = None
            return 0

        h = asm(self._traced_source())
        h.cpu.jit = True
        h.cpu.natives["toggle_trace"] = NativeFunction("toggle_trace", toggle)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            h.run("f", (HOT * 2,))  # warm + compile
            entries = self._instrument(h)
            h.cpu.trace = lambda name, index, instruction: None
            # Armed at entry: the run starts on the slow loop; the
            # mid-run disarm is honoured by the *next* run (the loop
            # choice is made per run), so drive one more fast run.
            h.run("f", (HOT // 2,))
            armed_entries = list(entries)
            h.run("f", (HOT * 2,))
        assert not armed_entries, "no superblock may run while armed"
        assert entries, "superblock entries must resume after disarm"

    def test_trace_warning_fires_once(self, asm):
        h = asm(self._traced_source())
        hook = lambda name, index, instruction: None  # noqa: E731
        with pytest.warns(RuntimeWarning, match="slow interpreter"):
            h.cpu.trace = hook
        h.cpu.trace = None
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            h.cpu.trace = hook
        assert not caught, "the fast-path warning must be one-shot"


class TestInvalidation:
    """Satellite: every decode-cache boundary must drop superblocks."""

    def test_flush_decode_cache_drops_superblocks(self, asm):
        source = hot_loop(" add rax, 3\n")
        h, first, _ = run_config(asm, source, fast=True, jit_on=True)
        decoded = h.cpu._decode_cache["f"]
        assert any(sb is not None for sb in decoded.jit_blocks.values())
        before = telemetry.snapshot()
        h.cpu.flush_decode_cache()
        delta = telemetry.delta(before)
        assert decoded.jit_blocks == {}
        assert decoded.jit_counts == {}
        assert delta.get("jit_invalidations_total", 0) >= 1
        # Differential straddling the flush: a second run recompiles and
        # still matches a slow harness run twice.
        second = h.run("f")
        slow = asm(source)
        slow.cpu.fast = False
        assert (slow.run("f"), slow.run("f")) == (first, second)
        assert_state_identical(h, slow)

    def test_flush_jit_cache_keeps_decoded_steps(self, asm):
        source = hot_loop(" add rax, 1\n")
        h, _, _ = run_config(asm, source, fast=True, jit_on=True)
        decoded = h.cpu._decode_cache["f"]
        steps = decoded.steps
        h.cpu.flush_jit_cache()
        assert decoded.jit_blocks == {} and decoded.jit_counts == {}
        assert h.cpu._decode_cache["f"] is decoded
        assert decoded.steps is steps

    def test_code_generation_bump_drops_superblocks(self, asm):
        source = hot_loop(" add rax, 3\n")
        h, first, _ = run_config(asm, source, fast=True, jit_on=True)
        stale = h.cpu._decode_cache["f"]
        assert any(sb is not None for sb in stale.jit_blocks.values())
        # Re-registering a function bumps code_generation (the rewriter's
        # patch path); the next run must re-decode from scratch.
        h.image.add_function(h.binary.functions["f"], replace=True)
        second = h.run("f")
        assert h.cpu._decode_cache["f"] is not stale
        slow = asm(source)
        slow.cpu.fast = False
        assert (slow.run("f"), slow.run("f")) == (first, second)
        assert_state_identical(h, slow)

    def test_restore_process_starts_cold_and_matches(self):
        source = """
        int hot(int n) {
            int i; int acc;
            acc = 0;
            for (i = 0; i < n; i = i + 1) { acc = acc + i * 3; }
            return acc - (acc / 256) * 256;
        }
        int main() { return hot(400); }
        """
        kernel = Kernel(seed=31)
        binary = build(source, "pssp", name="snap")
        process, _ = deploy(kernel, binary, "pssp", fast=True)
        process.cpu.jit = True
        process.run()
        assert any(
            sb is not None
            for decoded in process.cpu._decode_cache.values()
            for sb in decoded.jit_blocks.values()
        )
        image = process.snapshot()
        restored_jit = restore_process(image)
        restored_slow = restore_process(image)
        restored_jit.cpu.jit = True
        assert restored_jit.cpu._decode_cache == {}
        restored_slow.cpu.fast = False
        a = restored_jit.call("main")
        b = restored_slow.call("main")
        assert (a.exit_status, a.cycles, a.instructions) == (
            b.exit_status, b.cycles, b.instructions
        )
        assert not snapshot_divergences(
            architectural_snapshot(restored_jit),
            architectural_snapshot(restored_slow),
        )

    def test_fork_flushes_parent_superblocks(self):
        source = """
        int hot(int n) {
            int i; int acc;
            acc = 0;
            for (i = 0; i < n; i = i + 1) { acc = acc + i; }
            return acc - (acc / 256) * 256;
        }
        int main() { return hot(300); }
        """
        kernel = Kernel(seed=13)
        binary = build(source, "pssp", name="forker")
        process, _ = deploy(kernel, binary, "pssp", fast=True)
        process.cpu.jit = True
        process.run()
        assert any(
            sb is not None
            for decoded in process.cpu._decode_cache.values()
            for sb in decoded.jit_blocks.values()
        )
        # No superblock may outlive a memory-sharing boundary: the
        # parent's compiled code closes over pre-clone bound methods.
        kernel.fork(process)
        for decoded in process.cpu._decode_cache.values():
            assert decoded.jit_blocks == {}
            assert decoded.jit_counts == {}

    def test_forking_server_with_hot_handler_identical(self):
        source = """
        int handler(int n) {
            int i; int acc;
            acc = 0;
            for (i = 0; i < 80; i = i + 1) { acc = acc + n + i; }
            return acc - (acc / 256) * 256;
        }
        int main() {
            int pid; int i;
            for (i = 0; i < 3; i = i + 1) {
                pid = fork();
                if (pid == 0) {
                    return handler(i + 1);
                }
            }
            return handler(0);
        }
        """
        outcomes = []
        for fast, jit_on in ((False, False), (True, True)):
            kernel = Kernel(seed=99)
            binary = build(source, "pssp", name="server")
            process, _ = deploy(kernel, binary, "pssp", fast=fast)
            process.cpu.jit = jit_on
            result = process.run()
            children = [
                p for p in kernel.processes.values() if p.ppid == process.pid
            ]
            outcomes.append(
                (
                    result.state,
                    result.exit_status,
                    result.cycles,
                    result.instructions,
                    sorted((c.exit_status, c.cpu.cycles) for c in children),
                )
            )
        assert outcomes[0] == outcomes[1]


class TestTelemetryParity:
    def test_canary_counters_identical_with_jit(self):
        source = """
        int work(int n) {
            char buf[32];
            int i; int acc;
            acc = 0;
            for (i = 0; i < n; i = i + 1) {
                buf[i - (i / 31) * 31] = i;
                acc = acc + buf[i - (i / 31) * 31];
            }
            return acc - (acc / 256) * 256;
        }
        int main() {
            int i; int total;
            total = 0;
            for (i = 0; i < 30; i = i + 1) { total = total + work(40); }
            return total - (total / 256) * 256;
        }
        """
        deltas = []
        for fast, jit_on in ((False, False), (True, False), (True, True)):
            kernel = Kernel(seed=71)
            binary = build(source, "pssp-owf", name="parity")
            process, _ = deploy(kernel, binary, "pssp-owf", fast=fast)
            process.cpu.jit = jit_on
            before = telemetry.snapshot()
            result = process.run()
            delta = telemetry.delta(before)
            assert not result.crashed
            deltas.append(delta)
        for name in (
            "canary_prologue_stores_total",
            "canary_epilogue_checks_total",
            "machine_cycles_total",
            "machine_instructions_total",
        ):
            assert (
                deltas[0].get(name, 0)
                == deltas[1].get(name, 0)
                == deltas[2].get(name, 0)
            ), name

    def test_jit_counters_flow(self):
        source = """
        int main() {
            int i; int acc;
            acc = 0;
            for (i = 0; i < 300; i = i + 1) { acc = acc + i; }
            return acc - (acc / 256) * 256;
        }
        """
        kernel = Kernel(seed=3)
        binary = build(source, "none", name="counting")
        process, _ = deploy(kernel, binary, "none", fast=True)
        process.cpu.jit = True
        before = telemetry.snapshot()
        process.run()
        delta = telemetry.delta(before)
        assert delta.get("jit_blocks_compiled_total", 0) >= 1
        assert delta.get("jit_block_entries_total", 0) >= 1
