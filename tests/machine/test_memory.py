"""Segmented memory behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SegmentationFault
from repro.machine.memory import (
    DATA_BASE,
    HEAP_BASE,
    Memory,
    Segment,
    standard_memory,
)


@pytest.fixture
def memory():
    return standard_memory()


class TestMapping:
    def test_standard_segments_present(self, memory):
        for name in ("data", "heap", "tls", "stack"):
            assert memory.has_segment(name)

    def test_overlap_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.map_segment(Segment("clash", DATA_BASE + 8, 64))

    def test_find_by_address(self, memory):
        assert memory.find(HEAP_BASE).name == "heap"
        assert memory.find(0x1234) is None

    def test_segment_data_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Segment("bad", 0, 16, data=bytearray(8))


class TestAccess:
    def test_word_roundtrip(self, memory):
        memory.write_word(HEAP_BASE, 0x1122334455667788)
        assert memory.read_word(HEAP_BASE) == 0x1122334455667788

    def test_little_endian(self, memory):
        memory.write_word(HEAP_BASE, 0x01)
        assert memory.read(HEAP_BASE, 8) == b"\x01" + b"\x00" * 7

    def test_dword_roundtrip(self, memory):
        memory.write_dword(HEAP_BASE, 0xAABBCCDD)
        assert memory.read_dword(HEAP_BASE) == 0xAABBCCDD

    def test_byte_roundtrip(self, memory):
        memory.write_byte(HEAP_BASE + 3, 0x7F)
        assert memory.read_byte(HEAP_BASE + 3) == 0x7F

    def test_unmapped_read_faults(self, memory):
        with pytest.raises(SegmentationFault):
            memory.read(0xDEAD0000, 1)

    def test_unmapped_write_faults(self, memory):
        with pytest.raises(SegmentationFault):
            memory.write(0xDEAD0000, b"x")

    def test_straddling_segment_end_faults(self, memory):
        heap = memory.segment("heap")
        with pytest.raises(SegmentationFault):
            memory.read(heap.end - 4, 8)

    def test_write_to_readonly_faults(self):
        memory = Memory()
        memory.map_segment(Segment("code", 0x1000, 64, writable=False))
        with pytest.raises(SegmentationFault):
            memory.write(0x1000, b"x")
        assert memory.read(0x1000, 1) == b"\x00"

    def test_cstring(self, memory):
        memory.write(HEAP_BASE, b"hello\x00world")
        assert memory.read_cstring(HEAP_BASE) == b"hello"

    def test_cstring_unterminated_respects_limit(self, memory):
        memory.write(HEAP_BASE, b"x" * 32)
        assert memory.read_cstring(HEAP_BASE, limit=16) == b"x" * 16


class TestOverflowSemantics:
    def test_overflow_within_segment_succeeds(self, memory):
        """The core premise: an in-segment overrun is NOT a fault —
        detecting it is the canary's job, not the MMU's."""
        stack = memory.segment("stack")
        base = stack.base + 0x100
        memory.write(base, b"A" * 256)  # sails past any 'buffer' freely
        assert memory.read(base + 200, 1) == b"A"


class TestClone:
    def test_clone_copies_contents(self, memory):
        memory.write_word(HEAP_BASE, 42)
        clone = memory.clone()
        assert clone.read_word(HEAP_BASE) == 42

    def test_clone_is_independent(self, memory):
        clone = memory.clone()
        clone.write_word(HEAP_BASE, 99)
        assert memory.read_word(HEAP_BASE) == 0

    def test_clone_preserves_layout(self, memory):
        clone = memory.clone()
        for segment in memory.segments():
            twin = clone.segment(segment.name)
            assert (twin.base, twin.size) == (segment.base, segment.size)


@settings(max_examples=50, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=0x1000 - 8),
    value=st.integers(min_value=0, max_value=2**64 - 1),
)
def test_word_roundtrip_property(offset, value):
    memory = standard_memory()
    memory.write_word(HEAP_BASE + offset, value)
    assert memory.read_word(HEAP_BASE + offset) == value
