"""Binary diffing over real rewriter output."""

from repro.binfmt.diffing import diff_binaries
from repro.binfmt.elf import STATIC, merge_binaries
from repro.compiler.codegen import compile_source
from repro.libc.glibc_sim import build_static_glibc
from repro.rewriter.dyninst import instrument_static_binary
from repro.rewriter.rewrite import instrument_binary

VICTIM = """
int handler(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}
int helper(int x) {
    return x + 1;
}
int main() { return 0; }
"""


class TestDynamicRewriteDiff:
    def setup_method(self):
        self.native = compile_source(VICTIM, protection="ssp", name="v")
        self.rewritten = instrument_binary(self.native)
        self.diff = diff_binaries(self.native, self.rewritten)

    def test_only_protected_function_changed(self):
        changed = {d.name for d in self.diff.changed_functions()}
        assert changed == {"handler"}

    def test_no_functions_added_or_removed(self):
        assert self.diff.added_functions == []
        assert self.diff.removed_functions == []

    def test_zero_size_delta(self):
        assert self.diff.size_delta == 0

    def test_layout_preserved_per_function(self):
        for diff in self.diff.changed_functions():
            assert diff.layout_preserved

    def test_changes_show_the_mechanism(self):
        text = self.diff.render()
        assert "%fs:0x2a8" in text  # the prologue retarget
        assert "__stack_chk_fail" in text

    def test_identical_binaries_diff_empty(self):
        diff = diff_binaries(self.native, self.native)
        assert not diff.changed_functions()
        assert diff.size_delta == 0


class TestStaticRewriteDiff:
    def test_new_section_reported_as_additions(self):
        native = merge_binaries(
            compile_source(VICTIM, protection="ssp", name="v",
                           link_type=STATIC),
            build_static_glibc(),
            name="v",
        )
        instrumented = instrument_static_binary(native)
        diff = diff_binaries(native, instrumented)
        assert "__pssp_fork" in diff.added_functions
        assert "__pssp_stack_chk_fail" in diff.added_functions
        assert diff.size_delta > 0
