"""Binary model: sizes, cloning, static linking."""

import pytest

from repro.binfmt.elf import DYNAMIC, STATIC, Binary, merge_binaries
from repro.errors import LinkError
from repro.isa.instructions import Function, Reg


def make_binary(name="a", functions=("f",)):
    binary = Binary(name)
    for fname in functions:
        function = Function(fname)
        function.emit("push", Reg("rbp"))
        function.emit("ret")
        binary.add_function(function)
    return binary


class TestBinary:
    def test_function_lookup(self):
        binary = make_binary()
        assert binary.function("f").name == "f"
        assert binary.has_function("f")
        with pytest.raises(LinkError):
            binary.function("missing")

    def test_text_size_counts_bytes(self):
        binary = make_binary()
        assert binary.text_size() == 2  # push rbp (1) + ret (1)

    def test_total_size_includes_rodata(self):
        binary = make_binary()
        binary.rodata["s"] = b"hello\x00"
        assert binary.total_size() == binary.text_size() + 6

    def test_bss_occupies_no_file_bytes(self):
        binary = make_binary()
        binary.bss["buf"] = 4096
        assert binary.total_size() == binary.text_size()

    def test_clone_is_deep_for_functions(self):
        binary = make_binary()
        clone = binary.clone()
        clone.function("f").emit("nop")
        assert len(binary.function("f")) == 2

    def test_clone_preserves_metadata(self):
        binary = make_binary()
        binary.protection = "pssp"
        binary.constructors.append("ctor")
        clone = binary.clone()
        assert clone.protection == "pssp"
        assert clone.constructors == ["ctor"]

    def test_disassemble_mentions_every_function(self):
        binary = make_binary(functions=("f", "g"))
        listing = binary.disassemble()
        assert "f:" in listing and "g:" in listing


class TestMerge:
    def test_merge_combines_functions(self):
        merged = merge_binaries(make_binary("a", ("f",)), make_binary("b", ("g",)))
        assert merged.has_function("f") and merged.has_function("g")

    def test_merge_marks_static(self):
        merged = merge_binaries(make_binary(), make_binary("b", ("g",)))
        assert merged.link_type == STATIC

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(LinkError):
            merge_binaries(make_binary("a", ("f",)), make_binary("b", ("f",)))

    def test_duplicate_data_symbol_rejected(self):
        a = make_binary("a", ("f",))
        a.rodata["s"] = b"x"
        b = make_binary("b", ("g",))
        b.rodata["s"] = b"y"
        with pytest.raises(LinkError):
            merge_binaries(a, b)

    def test_merge_concatenates_constructors(self):
        a = make_binary("a", ("f",))
        a.constructors.append("init_a")
        b = make_binary("b", ("g",))
        b.constructors.append("init_b")
        merged = merge_binaries(a, b)
        assert merged.constructors == ["init_a", "init_b"]

    def test_merge_does_not_mutate_inputs(self):
        a = make_binary("a", ("f",))
        b = make_binary("b", ("g",))
        merge_binaries(a, b)
        assert not a.has_function("g")
        assert a.link_type == DYNAMIC
