"""Binary serialization round-trips."""

import pytest

from repro.binfmt.serialize import dumps, load_file, loads, save
from repro.compiler.codegen import compile_source
from repro.core.deploy import deploy
from repro.errors import LinkError
from repro.kernel.kernel import Kernel
from repro.rewriter.rewrite import instrument_binary

VICTIM = """
int handler(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}
int main() { return handler(0); }
"""


@pytest.fixture
def binary():
    return compile_source(VICTIM, protection="pssp", name="victim")


class TestRoundTrip:
    def test_functions_preserved(self, binary):
        restored = loads(dumps(binary))
        assert set(restored.functions) == set(binary.functions)
        for name in binary.functions:
            assert restored.function(name).body == binary.function(name).body
            assert restored.function(name).labels == binary.function(name).labels

    def test_metadata_preserved(self, binary):
        restored = loads(dumps(binary))
        assert restored.protection == "pssp"
        assert restored.entry == binary.entry
        assert restored.function("handler").meta == binary.function("handler").meta

    def test_rodata_preserved(self, binary):
        binary.rodata["blob"] = bytes(range(256))
        restored = loads(dumps(binary))
        assert restored.rodata["blob"] == bytes(range(256))

    def test_sizes_identical(self, binary):
        restored = loads(dumps(binary))
        assert restored.total_size() == binary.total_size()

    def test_deterministic_bytes(self, binary):
        assert dumps(binary) == dumps(binary)

    def test_file_roundtrip(self, binary, tmp_path):
        path = str(tmp_path / "victim.relf")
        save(binary, path)
        restored = load_file(path)
        assert set(restored.functions) == set(binary.functions)


class TestRestoredBinariesExecute:
    def test_runs_and_detects(self, binary):
        restored = loads(dumps(binary))
        kernel = Kernel(7)
        process, _ = deploy(kernel, restored, "pssp")
        process.feed_stdin(b"A" * 100)
        assert process.call("handler", (100,)).smashed

    def test_rewriter_consumes_deserialized_binaries(self):
        """The realistic pipeline: compile → ship to disk → rewrite."""
        shipped = loads(dumps(compile_source(VICTIM, protection="ssp",
                                             name="legacy")))
        rewritten = instrument_binary(shipped)
        assert rewritten.total_size() == shipped.total_size()
        kernel = Kernel(8)
        process, _ = deploy(kernel, rewritten, "pssp-binary")
        process.feed_stdin(b"A" * 100)
        assert process.call("handler", (100,)).smashed


class TestValidation:
    def test_bad_magic_rejected(self):
        with pytest.raises(LinkError):
            loads(b'{"magic": "NOPE", "version": 1}')

    def test_garbage_rejected(self):
        with pytest.raises(LinkError):
            loads(b"\x7fELF\x02\x01\x01")

    def test_wrong_version_rejected(self, binary):
        import json

        document = json.loads(dumps(binary))
        document["version"] = 99
        with pytest.raises(LinkError):
            loads(json.dumps(document).encode())
