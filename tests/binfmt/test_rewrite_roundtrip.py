"""Serialize → rewrite → serialize → load round-trip regression.

A real rewriter consumes a binary from disk and writes one back; any
fidelity gap in the container format would let the rewriter "pass" in
memory while producing garbage on disk.  This pins the full pipeline:

    compile(ssp) → dumps → loads → instrument_binary → dumps → loads

and asserts the structural diff between the two *loaded* binaries is
exactly the documented prologue/epilogue rewrites — nothing else.
"""

from repro.binfmt.diffing import diff_binaries
from repro.binfmt.serialize import dumps, loads
from repro.compiler.codegen import compile_source
from repro.machine.tls import SHADOW_C0_OFFSET
from repro.rewriter.matcher import is_ssp_protected
from repro.rewriter.rewrite import instrument_binary, verify_layout_preserved

SOURCE = """
int leaf(int n) {
    char buf[24];
    buf[0] = n;
    return buf[0] + 1;
}

int plain(int n) {
    return n * 3;
}

int main() {
    return leaf(4) + plain(5);
}
"""


def roundtrip_pair():
    """(loaded original, loaded rewrite-of-loaded-original)."""
    compiled = compile_source(SOURCE, protection="ssp", name="rt")
    original = loads(dumps(compiled))
    rewritten = loads(dumps(instrument_binary(original)))
    return original, rewritten


class TestRoundTripFidelity:
    def test_serialize_is_lossless_for_ssp_builds(self):
        compiled = compile_source(SOURCE, protection="ssp", name="rt")
        reloaded = loads(dumps(compiled))
        assert set(reloaded.functions) == set(compiled.functions)
        for name, function in compiled.functions.items():
            assert reloaded.functions[name].body == function.body
            assert reloaded.functions[name].labels == function.labels

    def test_rewritten_binary_survives_serialization(self):
        compiled = compile_source(SOURCE, protection="ssp", name="rt")
        rewritten = instrument_binary(compiled)
        reloaded = loads(dumps(rewritten))
        for name, function in rewritten.functions.items():
            assert reloaded.functions[name].body == function.body
        assert reloaded.protection == rewritten.protection


class TestStructuralDiff:
    def test_diff_is_exactly_the_documented_rewrites(self):
        original, rewritten = roundtrip_pair()
        diff = diff_binaries(original, rewritten)

        # No functions appear or vanish on the dynamic path.
        assert diff.added_functions == []
        assert diff.removed_functions == []
        # Zero on-disk growth (Table II's dynamic row).
        assert diff.size_delta == 0

        changed = {d.name for d in diff.changed_functions()}
        protected = {
            name
            for name, function in original.functions.items()
            if is_ssp_protected(function)
        }
        # Every protected function is rewritten; nothing else is touched
        # (SSP only guards buffer-holding frames, so only ``leaf`` here).
        assert changed == protected == {"leaf"}

        for function_diff in diff.changed_functions():
            assert function_diff.layout_preserved
            before = original.functions[function_diff.name]
            after = rewritten.functions[function_diff.name]
            for change in function_diff.changes:
                if change.index >= len(after.body):
                    continue  # trailing positions only exist pre-rewrite
                instruction = after.body[change.index]
                # A changed position is either a tagged rewrite or an
                # untouched instruction the epilogue splice shifted.
                assert (
                    instruction.note.startswith("pssp-binary")
                    or instruction in before.body
                ), (function_diff.name, change.index, instruction)

    def test_changed_sites_are_prologue_and_epilogue_shapes(self):
        original, rewritten = roundtrip_pair()
        for name, function in rewritten.functions.items():
            for index, instruction in enumerate(function.body):
                if not instruction.note.startswith("pssp-binary"):
                    continue
                if instruction.note == "pssp-binary-prologue":
                    # The retargeted TLS load: mov reg, fs:0x2a8.
                    assert instruction.op == "mov"
                    memory = instruction.operands[1]
                    assert memory.seg == "fs"
                    assert memory.disp == SHADOW_C0_OFFSET
                else:
                    # The Code-6 epilogue: rdi-passing check-call window.
                    assert instruction.op in (
                        "push", "pop", "call", "je", "nop"
                    ), (name, index, instruction.op)

    def test_layout_contract_holds_after_roundtrip(self):
        original, rewritten = roundtrip_pair()
        assert verify_layout_preserved(original, rewritten) == []
