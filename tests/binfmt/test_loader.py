"""Loader: address assignment, resolution, interposition."""

import pytest

from repro.binfmt.elf import Binary
from repro.binfmt.loader import LoadedImage, load
from repro.errors import InvalidJump, LinkError
from repro.isa.assembler import assemble
from repro.isa.encoding import encoded_length
from repro.machine.memory import CODE_BASE, standard_memory


def binary_from_asm(source, name="a"):
    binary = Binary(name)
    for function in assemble(source).values():
        binary.add_function(function)
    return binary


SOURCE = """
f:
    push rbp
    mov rbp, rsp
    leave
    ret
g:
    nop
    ret
"""


class TestLayout:
    def test_functions_get_increasing_addresses(self):
        image = load(binary_from_asm(SOURCE), standard_memory())
        assert image.entry_of("f") == CODE_BASE
        assert image.entry_of("g") > image.entry_of("f")

    def test_instruction_offsets_follow_encoding(self):
        binary = binary_from_asm(SOURCE)
        image = load(binary, standard_memory())
        f = binary.function("f")
        expected = image.entry_of("f") + encoded_length(f.body[0])
        assert image.address_of("f", 1) == expected

    def test_resolve_roundtrip_every_instruction(self):
        binary = binary_from_asm(SOURCE)
        image = load(binary, standard_memory())
        for name in ("f", "g"):
            for index in range(len(binary.function(name))):
                address = image.address_of(name, index)
                function, resolved = image.resolve(address)
                assert (function.name, resolved) == (name, index)

    def test_resolve_mid_instruction_faults(self):
        image = load(binary_from_asm(SOURCE), standard_memory())
        # f's second instruction (mov rbp, rsp) is 3 bytes; +1 is mid-byte.
        with pytest.raises(InvalidJump):
            image.resolve(image.address_of("f", 1) + 1)

    def test_resolve_unmapped_faults(self):
        image = load(binary_from_asm(SOURCE), standard_memory())
        with pytest.raises(InvalidJump):
            image.resolve(0x10)
        with pytest.raises(InvalidJump):
            image.resolve(image.entry_of("g") + 0x10000)

    def test_unknown_symbol_is_link_error(self):
        image = load(binary_from_asm(SOURCE), standard_memory())
        with pytest.raises(LinkError):
            image.address_of("missing")


class TestData:
    def test_rodata_written_and_addressable(self):
        binary = binary_from_asm(SOURCE)
        binary.rodata["msg"] = b"hi\x00"
        memory = standard_memory()
        image = load(binary, memory)
        address = image.address_of("msg")
        assert memory.read_cstring(address) == b"hi"

    def test_bss_reserved(self):
        binary = binary_from_asm(SOURCE)
        binary.rodata["msg"] = b"hi\x00"
        binary.bss["table"] = 64
        memory = standard_memory()
        image = load(binary, memory)
        assert image.address_of("table") > image.address_of("msg")


class TestInterposition:
    def test_preload_shadows_binary_symbol(self):
        main = binary_from_asm("f:\n mov rax, 1\n ret\n")
        preload = binary_from_asm("f:\n mov rax, 2\n ret\n", name="pre")
        image = load(main, standard_memory(), preloads=[preload])
        # The preload's definition wins: its body loads 2.
        function = image.function("f")
        assert function.body[0].operands[1].value == 2

    def test_duplicate_load_rejected(self):
        image = LoadedImage()
        binary = binary_from_asm(SOURCE)
        image.add_function(binary.function("f"))
        with pytest.raises(LinkError):
            image.add_function(binary.function("f"))

    def test_replace_relocates_bigger_body(self):
        image = LoadedImage()
        small = binary_from_asm("f:\n ret\n").function("f")
        big = binary_from_asm(
            "f:\n push rbp\n mov rbp, rsp\n leave\n ret\n"
        ).function("f")
        first_entry = image.add_function(small)
        second_entry = image.add_function(big, replace=True)
        assert second_entry > first_entry
        assert image.function("f") is big
