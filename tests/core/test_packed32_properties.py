"""Algorithm 1 / Theorem 1 properties of the folded 32-bit rewriter form.

The binary-instrumentation path cannot grow SSP's single canary word, so
it packs two 32-bit halves into it: ``packed = C0 | (C1 << 32)`` with
``C0 ⊕ C1 == fold32(C)``.  These property tests pin down the three
claims the paper's Theorem 1 makes for that folded form:

1. the XOR invariant holds for *every* (seed, canary) pair,
2. each observed half is (statistically) uniform — a BROP attacker
   harvesting halves from crashed children learns nothing, and
3. the halves are independent of the protected canary: the C0 stream
   does not depend on ``C`` at all, and distinct invocations are
   independent of each other.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rerandomize import (
    check_packed32,
    fold32,
    re_randomize_packed32,
)
from repro.crypto.random import EntropySource

seeds = st.integers(min_value=0, max_value=2**32 - 1)
canaries = st.integers(min_value=0, max_value=2**64 - 1)


def halves(packed: int):
    return packed & 0xFFFF_FFFF, (packed >> 32) & 0xFFFF_FFFF


class TestXorInvariant:
    @given(seed=seeds, canary=canaries)
    @settings(max_examples=200, deadline=None)
    def test_packed_halves_bind_to_folded_canary(self, seed, canary):
        packed = re_randomize_packed32(EntropySource(seed), canary)
        c0, c1 = halves(packed)
        assert c0 ^ c1 == fold32(canary)
        assert check_packed32(packed, canary)

    @given(seed=seeds, canary=canaries)
    @settings(max_examples=100, deadline=None)
    def test_any_single_bit_flip_breaks_the_check(self, seed, canary):
        packed = re_randomize_packed32(EntropySource(seed), canary)
        for bit in (0, 17, 31, 32, 48, 63):
            assert not check_packed32(packed ^ (1 << bit), canary)

    @given(seed=seeds, canary=canaries)
    @settings(max_examples=100, deadline=None)
    def test_fold32_matches_epilogue_algebra(self, seed, canary):
        # What the rewritten epilogue computes (lo ⊕ hi of the stack word)
        # equals what the Figure-3 stub computes from TLS (fold32(C)).
        packed = re_randomize_packed32(EntropySource(seed), canary)
        c0, c1 = halves(packed)
        assert (c0 ^ c1) == ((canary ^ (canary >> 32)) & 0xFFFF_FFFF)


class TestHalfDistribution:
    """Uniformity of each observed half (fixed canary, many invocations)."""

    SAMPLES = 4096

    def _stream(self, canary: int, seed: int = 20180625):
        entropy = EntropySource(seed)
        return [
            re_randomize_packed32(entropy, canary) for _ in range(self.SAMPLES)
        ]

    def test_every_c0_bit_is_balanced(self):
        stream = self._stream(0xDEADBEEF_CAFEF00D)
        for bit in range(32):
            ones = sum((packed >> bit) & 1 for packed in stream)
            # Binomial(4096, 0.5): ±5 sigma ≈ ±160.
            assert abs(ones - self.SAMPLES // 2) < 320, f"bit {bit}: {ones}"

    def test_every_c1_bit_is_balanced(self):
        # C1 = C0 ⊕ fold32(C) inherits uniformity from C0 — including for
        # a pathological all-ones canary that complements every bit.
        stream = self._stream(0xFFFFFFFF_FFFFFFFF)
        for bit in range(32, 64):
            ones = sum((packed >> bit) & 1 for packed in stream)
            assert abs(ones - self.SAMPLES // 2) < 320, f"bit {bit}: {ones}"

    def test_top_nibble_histogram_is_flat(self):
        stream = self._stream(0x0123456789ABCDEF)
        bins = [0] * 16
        for packed in stream:
            bins[(packed >> 28) & 0xF] += 1
        expected = self.SAMPLES / 16
        for value, count in enumerate(bins):
            assert abs(count - expected) < expected * 0.5, (value, count)

    def test_invocations_are_distinct(self):
        stream = self._stream(0x1111111111111111)
        assert len(set(stream)) == self.SAMPLES


class TestIndependence:
    """Theorem 1: observed halves carry zero information about ``C``."""

    def test_c0_stream_does_not_depend_on_canary(self):
        # Identical entropy, two very different canaries: the C0 halves
        # are *identical* — the draw never reads C, so leaking C0 leaks
        # nothing about C.
        entropy_a, entropy_b = EntropySource(7), EntropySource(7)
        for _ in range(256):
            packed_a = re_randomize_packed32(entropy_a, 0x0000000000000000)
            packed_b = re_randomize_packed32(entropy_b, 0xFFFFFFFFFFFFFFFF)
            assert halves(packed_a)[0] == halves(packed_b)[0]

    @given(seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_c1_alone_reveals_only_c0_xor_fold(self, seed):
        # Given C1, every 32-bit folded canary remains possible: for any
        # candidate F there exists a C0 (namely C1 ⊕ F) producing it.
        packed = re_randomize_packed32(EntropySource(seed), 0xA5A5A5A5_5A5A5A5A)
        _, c1 = halves(packed)
        for candidate in (0x00000000, 0xFFFFFFFF, 0x12345678):
            assert 0 <= (c1 ^ candidate) <= 0xFFFF_FFFF

    def test_successive_pairs_uncorrelated(self):
        # XOR of successive C0s should itself look uniform (no lag-1
        # structure an attacker could extrapolate across forks).
        entropy = EntropySource(99)
        canary = 0xDEADBEEF_00C0FFEE
        stream = [
            halves(re_randomize_packed32(entropy, canary))[0]
            for _ in range(2048)
        ]
        deltas = [a ^ b for a, b in zip(stream, stream[1:])]
        for bit in range(32):
            ones = sum((delta >> bit) & 1 for delta in deltas)
            assert abs(ones - len(deltas) // 2) < 250, f"bit {bit}: {ones}"
