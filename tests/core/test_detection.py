"""Every scheme must detect a smash and pass benign traffic (parametrized
over the full registry) — the library's most important contract."""

import pytest

from repro.core.deploy import SCHEMES, build, deploy
from repro.kernel.kernel import Kernel

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""

LOCAL_VAR_VICTIM = """
int handler(int n) {
    critical char secret[8];
    critical char buf[16];
    secret[0] = 42;
    read(0, buf, 4096);
    return secret[0];
}
int main() { return 0; }
"""

PROTECTING_SCHEMES = [name for name in sorted(SCHEMES) if name != "none"]


def deploy_victim(scheme, source=VICTIM, seed=17):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="victim")
    process, _ = deploy(kernel, binary, scheme)
    return process


class TestDetection:
    @pytest.mark.parametrize("scheme", PROTECTING_SCHEMES)
    def test_overflow_detected(self, scheme):
        process = deploy_victim(scheme)
        process.feed_stdin(b"A" * 200)
        result = process.call("handler", (200,))
        assert result.smashed, f"{scheme} missed the overflow"

    @pytest.mark.parametrize("scheme", PROTECTING_SCHEMES)
    def test_benign_input_passes(self, scheme):
        process = deploy_victim(scheme)
        process.feed_stdin(b"B" * 32)
        result = process.call("handler", (32,))
        assert result.state == "exited", f"{scheme} false positive: {result.crash}"

    @pytest.mark.parametrize("scheme", PROTECTING_SCHEMES)
    def test_boundary_fill_passes(self, scheme):
        # Exactly filling the buffer must not trip any scheme.
        process = deploy_victim(scheme)
        process.feed_stdin(b"C" * 64)
        result = process.call("handler", (64,))
        assert result.state == "exited", f"{scheme} false positive: {result.crash}"

    def test_unprotected_build_misses_small_overflow(self):
        # Clobbering only the canary region under 'none' goes undetected —
        # the contrast that motivates canaries at all.
        process = deploy_victim("none")
        process.feed_stdin(b"D" * 72)  # 8 bytes past the buffer
        result = process.call("handler", (72,))
        assert result.state == "exited"


class TestLocalVariableProtection:
    def test_lv_detects_intra_frame_overflow_before_return(self):
        """A 17-byte write into buf[16] corrupts the canary guarding the
        *next* variable; P-SSP-LV's post-write check fires immediately."""
        process = deploy_victim("pssp-lv", source=LOCAL_VAR_VICTIM)
        process.feed_stdin(b"E" * 40)
        result = process.call("handler", (40,))
        assert result.smashed

    def test_ssp_lv_comparison_benign(self):
        process = deploy_victim("pssp-lv", source=LOCAL_VAR_VICTIM)
        process.feed_stdin(b"F" * 8)
        result = process.call("handler", (8,))
        assert result.state == "exited"


class TestDeployment:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_every_scheme_builds_and_runs_main(self, scheme):
        process = deploy_victim(scheme)
        assert process.run().state == "exited"

    def test_unknown_scheme_rejected(self):
        from repro.core.deploy import get_scheme
        from repro.errors import ProtectionError

        with pytest.raises(ProtectionError):
            get_scheme("magic")

    def test_binary_protection_recorded(self):
        binary = build(VICTIM, "pssp-binary", name="v")
        assert binary.protection == "pssp-binary"
        assert binary.name.endswith(".pssp")

    def test_static_scheme_links_glibc_stubs(self):
        binary = build(VICTIM, "pssp-binary-static", name="v")
        assert binary.has_function("__pssp_fork")
        assert "__pssp_setup" in binary.constructors
