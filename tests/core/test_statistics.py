"""Statistical quality of the canary material (scipy-backed).

Theorem 1 is about information leakage; these tests check the underlying
distributions rigorously: chi-square uniformity of Algorithm 1's outputs
at byte granularity, independence across forks, and bit balance of the
OWF ciphertext.
"""

from collections import Counter

import pytest
from scipy import stats

from repro.core.rerandomize import re_randomize, re_randomize_packed32
from repro.crypto.owf import owf_canary
from repro.crypto.random import EntropySource

#: statistical sweeps over many canary draws — excluded from the CI quick-signal subset.
pytestmark = pytest.mark.slow

ALPHA = 1e-6  # reject only on overwhelming evidence (tests must be stable)


def chi_square_uniform(counts, categories):
    observed = [counts.get(value, 0) for value in range(categories)]
    return stats.chisquare(observed).pvalue


class TestAlgorithm1Distributions:
    def test_c0_bytes_uniform(self):
        entropy = EntropySource(41)
        canary = entropy.word(64)
        counts = Counter()
        for _ in range(20_000):
            c0, _ = re_randomize(entropy, canary)
            counts[c0 & 0xFF] += 1
        assert chi_square_uniform(counts, 256) > ALPHA

    def test_c1_bytes_uniform_for_fixed_canary(self):
        # The attacker-visible half: must be uniform whatever C is.
        entropy = EntropySource(42)
        canary = 0xDEADBEEF_CAFEF00D
        counts = Counter()
        for _ in range(20_000):
            _, c1 = re_randomize(entropy, canary)
            counts[(c1 >> 8) & 0xFF] += 1
        assert chi_square_uniform(counts, 256) > ALPHA

    def test_successive_pairs_uncorrelated(self):
        # Pearson correlation of successive C0 low bytes ≈ 0.
        entropy = EntropySource(43)
        canary = entropy.word(64)
        draws = [re_randomize(entropy, canary)[0] & 0xFF for _ in range(8_000)]
        r, p = stats.pearsonr(draws[:-1], draws[1:])
        assert abs(r) < 0.05

    def test_packed32_halves_uniform(self):
        entropy = EntropySource(44)
        canary = entropy.word(64)
        counts = Counter()
        for _ in range(20_000):
            packed = re_randomize_packed32(entropy, canary)
            counts[packed & 0xFF] += 1
        assert chi_square_uniform(counts, 256) > ALPHA


class TestOwfDistributions:
    def test_ciphertext_bit_balance_over_nonces(self):
        # For a fixed key and return address, varying only the nonce must
        # give ~50% ones in every ciphertext byte (AES as a PRF).
        key_lo, key_hi = 0x1111222233334444, 0x5555666677778888
        ret = 0x401234
        ones = 0
        total_bits = 0
        for nonce in range(2_000):
            block = owf_canary(key_lo, key_hi, nonce, ret)
            ones += sum(bin(b).count("1") for b in block)
            total_bits += 128
        ratio = ones / total_bits
        assert 0.48 < ratio < 0.52

    def test_ciphertext_low_byte_uniform_over_nonces(self):
        key_lo, key_hi = 0x0102030405060708, 0x090A0B0C0D0E0F10
        ret = 0x401234
        counts = Counter()
        for nonce in range(20_000):
            counts[owf_canary(key_lo, key_hi, nonce, ret)[0]] += 1
        assert chi_square_uniform(counts, 256) > ALPHA

    def test_avalanche_between_adjacent_return_addresses(self):
        # One-bit change in the return address flips ~half the bits.
        key_lo, key_hi = 0xAAAA, 0xBBBB
        flips = []
        for nonce in range(200):
            a = owf_canary(key_lo, key_hi, nonce, 0x401000)
            b = owf_canary(key_lo, key_hi, nonce, 0x401001)
            flips.append(
                sum(bin(x ^ y).count("1") for x, y in zip(a, b))
            )
        mean_flips = sum(flips) / len(flips)
        assert 54 < mean_flips < 74  # 64 ± 10 of 128 bits
