"""Exact detection boundaries: where precisely does each scheme fire?

The frame layout puts the buffer flush against the canary region, so a
write of exactly ``buffer_size`` bytes is benign and ``buffer_size + 1``
bytes clobbers the first canary byte.  One documented exception: SSP's
glibc-style terminator canary has 0x00 as its lowest byte, so a one-byte
overflow *of value zero* is invisible to it — P-SSP's fully random halves
close that gap.
"""

import pytest

from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""

BUFFER = 64


def outcome(scheme, payload, seed=19):
    kernel = Kernel(seed)
    binary = build(VICTIM, scheme, name="v")
    process, _ = deploy(kernel, binary, scheme)
    process.feed_stdin(payload)
    return process.call("handler", (len(payload),))


class TestBoundaries:
    @pytest.mark.parametrize("scheme", ["ssp", "pssp", "pssp-nt", "pssp-owf"])
    @pytest.mark.parametrize("length", [0, 1, 32, 63, 64])
    def test_within_buffer_never_fires(self, scheme, length):
        result = outcome(scheme, b"A" * length)
        assert result.state == "exited", f"{scheme}/{length}: {result.crash}"

    @pytest.mark.parametrize("scheme", ["ssp", "pssp", "pssp-nt", "pssp-owf"])
    def test_one_byte_past_fires(self, scheme):
        result = outcome(scheme, b"A" * (BUFFER + 1))
        assert result.smashed, f"{scheme} missed a 1-byte overflow"

    @pytest.mark.parametrize("scheme", ["ssp", "pssp", "pssp-nt"])
    @pytest.mark.parametrize("extra", [2, 4, 8, 12, 16])
    def test_partial_canary_overwrites_fire(self, scheme, extra):
        result = outcome(scheme, b"B" * (BUFFER + extra))
        assert result.smashed

    def test_ssp_terminator_blind_spot(self):
        """A single NUL byte past the buffer matches SSP's terminator
        canary byte — the classic str-function blind spot."""
        result = outcome("ssp", b"A" * BUFFER + b"\x00")
        assert result.state == "exited"  # undetected by design

    def test_pssp_closes_the_terminator_blind_spot(self):
        """P-SSP halves are fully random (the XOR split makes terminator
        tricks irrelevant), so the same NUL overflow is caught with
        overwhelming probability."""
        caught = 0
        for seed in range(6):
            result = outcome("pssp", b"A" * BUFFER + b"\x00", seed=100 + seed)
            caught += int(result.smashed)
        assert caught == 6  # each seed's C1 low byte is nonzero whp

    @pytest.mark.parametrize("scheme", ["ssp", "pssp"])
    def test_rewriting_value_equal_to_canary_is_invisible(self, scheme):
        """Writing the *exact current canary bytes* back is undetectable —
        canaries detect modification, not access (the paper's premise:
        the defence is only as strong as the canary's secrecy)."""
        kernel = Kernel(77)
        binary = build(VICTIM, scheme, name="v")
        process, _ = deploy(kernel, binary, scheme)
        from repro.attacks.payloads import PayloadBuilder, frame_map

        frame = frame_map(binary, "handler")
        builder = PayloadBuilder(frame)
        if scheme == "ssp":
            words = {8: process.tls.canary}
        else:
            words = {8: process.tls.shadow_c0, 16: process.tls.shadow_c1}
        payload = builder.with_canaries(words)
        process.feed_stdin(payload)
        assert process.call("handler", (len(payload),)).state == "exited"
