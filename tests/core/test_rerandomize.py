"""Algorithm 1 invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rerandomize import (
    check_packed32,
    check_pair,
    fold32,
    re_randomize,
    re_randomize_packed32,
)
from repro.crypto.random import EntropySource


class TestReRandomize:
    def test_pair_xors_to_canary(self):
        entropy = EntropySource(1)
        canary = 0xDEADBEEFCAFEF00D
        c0, c1 = re_randomize(entropy, canary)
        assert c0 ^ c1 == canary

    def test_pairs_differ_between_invocations(self):
        entropy = EntropySource(1)
        canary = 0x1234
        pairs = {re_randomize(entropy, canary) for _ in range(16)}
        assert len(pairs) == 16

    def test_width_parameter(self):
        entropy = EntropySource(1)
        c0, c1 = re_randomize(entropy, 0xFFFF, bits=16)
        assert c0 < (1 << 16) and c1 < (1 << 16)
        assert (c0 ^ c1) == 0xFFFF

    def test_check_pair(self):
        entropy = EntropySource(2)
        canary = entropy.word()
        c0, c1 = re_randomize(entropy, canary)
        assert check_pair(c0, c1, canary)
        assert not check_pair(c0 ^ 1, c1, canary)


class TestFold32:
    def test_folds_both_halves(self):
        assert fold32(0x00000001_00000000) == 1
        assert fold32(0x00000000_00000001) == 1
        assert fold32(0x00000001_00000001) == 0

    def test_packed_format(self):
        entropy = EntropySource(3)
        canary = entropy.word()
        packed = re_randomize_packed32(entropy, canary)
        assert check_packed32(packed, canary)

    def test_packed_rejects_tampering(self):
        entropy = EntropySource(3)
        canary = entropy.word()
        packed = re_randomize_packed32(entropy, canary)
        assert not check_packed32(packed ^ 0xFF, canary)


@settings(max_examples=100, deadline=None)
@given(canary=st.integers(min_value=0, max_value=2**64 - 1),
       seed=st.integers(min_value=0, max_value=2**32))
def test_rerandomize_property(canary, seed):
    entropy = EntropySource(seed)
    c0, c1 = re_randomize(entropy, canary)
    assert c0 ^ c1 == canary
    assert check_pair(c0, c1, canary)


@settings(max_examples=100, deadline=None)
@given(canary=st.integers(min_value=0, max_value=2**64 - 1),
       seed=st.integers(min_value=0, max_value=2**32))
def test_packed_property(canary, seed):
    entropy = EntropySource(seed)
    packed = re_randomize_packed32(entropy, canary)
    assert check_packed32(packed, canary)
