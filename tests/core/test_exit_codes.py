"""The CLI exit-code contract lives in one place: ``repro.errors``.

Every campaign command (fuzz, chaos, fleet, serve) maps its verdict to
these constants, and CI scripts key on the numeric values — so the
values are pinned here, and the commands are checked to import the
shared constants rather than growing private copies.
"""

from repro import cli, errors


class TestConstants:
    def test_the_pinned_values(self):
        assert errors.EXIT_OK == 0
        assert errors.EXIT_VIOLATION == 1
        assert errors.EXIT_USAGE == 2
        assert errors.EXIT_INFRASTRUCTURE == 3
        assert errors.EXIT_DEADLINE == 4

    def test_cli_re_exports_the_shared_constants(self):
        # Bound by import, not copied: the CLI's names *are* the
        # errors module's objects.
        assert cli.EXIT_OK is errors.EXIT_OK
        assert cli.EXIT_VIOLATION is errors.EXIT_VIOLATION
        assert cli.EXIT_USAGE is errors.EXIT_USAGE
        assert cli.EXIT_INFRASTRUCTURE is errors.EXIT_INFRASTRUCTURE
        assert cli.EXIT_DEADLINE is errors.EXIT_DEADLINE


class TestCommandsUseTheSharedConstants:
    def test_campaign_commands_resolve_through_errors(self):
        import ast
        import inspect

        source = inspect.getsource(cli)
        tree = ast.parse(source)
        imported = {
            alias.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom) and node.module == "errors"
            for alias in node.names
        }
        assert {
            "EXIT_OK", "EXIT_VIOLATION", "EXIT_USAGE",
            "EXIT_INFRASTRUCTURE", "EXIT_DEADLINE",
        } <= imported
        # No shadowing assignment redefines the constants locally.
        assigned = {
            target.id
            for node in ast.walk(tree)
            if isinstance(node, ast.Assign)
            for target in node.targets
            if isinstance(target, ast.Name)
        }
        assert not assigned & {
            "EXIT_OK", "EXIT_VIOLATION", "EXIT_USAGE",
            "EXIT_INFRASTRUCTURE", "EXIT_DEADLINE",
        }

    def test_usage_errors_exit_2_everywhere(self, capsys):
        assert cli.main(["fuzz", "--budget", "1",
                         "--shard-retries", "-2"]) == 2
        assert cli.main(["chaos", "--budget", "1",
                         "--shard-retries", "-2"]) == 2
        assert cli.main(["fleet", "--budget", "100",
                         "--shard-retries", "-2"]) == 2
        assert cli.main(["attack", "--repeats", "2",
                         "--shard-retries", "-2"]) == 2
        capsys.readouterr()
