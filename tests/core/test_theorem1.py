"""Theorem 1: observing C1 halves across forks leaks nothing about C.

The paper proves Pr(C) = Pr(C | C1^1 ... C1^n).  We verify the statement
empirically at a reduced canary width where exact statistics are
tractable: over many trials with *fixed observed values*, the conditional
distribution of C given the observed C1 sequence must stay uniform.
"""

from collections import Counter

from repro.core.rerandomize import re_randomize
from repro.crypto.random import EntropySource

BITS = 4  # 16 possible canaries: exact chi-square style checks feasible
DOMAIN = 1 << BITS


class TestTheorem1:
    def test_c1_uniform_regardless_of_canary(self):
        """For any fixed C, the C1 output is uniform over the domain."""
        entropy = EntropySource(11)
        for canary in (0, 3, 9, DOMAIN - 1):
            counts = Counter(
                re_randomize(entropy, canary, bits=BITS)[1]
                for _ in range(20_000)
            )
            expected = 20_000 / DOMAIN
            for value in range(DOMAIN):
                assert abs(counts[value] - expected) < expected * 0.25

    def test_conditional_distribution_of_canary_is_uniform(self):
        """Pr(C | C1 sequence) stays uniform: Bayes on simulated forks."""
        entropy = EntropySource(12)
        observed_target = (5, 11, 2)  # an arbitrary fixed observation
        posterior = Counter()
        for _ in range(120_000):
            canary = entropy.word(BITS)
            observation = tuple(
                re_randomize(entropy, canary, bits=BITS)[1]
                for _ in range(len(observed_target))
            )
            if observation == observed_target:
                posterior[canary] += 1
        total = sum(posterior.values())
        assert total > 0
        expected = total / DOMAIN
        for canary in range(DOMAIN):
            # Uniform posterior despite the adversary's observations.
            assert abs(posterior[canary] - expected) < max(6.0, expected * 0.7)

    def test_accumulation_fails_across_forks(self):
        """A byte 'confirmed' against one fork's pair holds for the next
        fork only at chance rate — the no-accumulation property."""
        entropy = EntropySource(13)
        canary = entropy.word(64)
        hits = 0
        trials = 3_000
        for _ in range(trials):
            c0_a, c1_a = re_randomize(entropy, canary)
            c0_b, c1_b = re_randomize(entropy, canary)
            # Attacker learned the low byte of fork A's C1 half; test it
            # against fork B's.
            hits += int((c1_a & 0xFF) == (c1_b & 0xFF))
        chance = trials / 256
        assert hits < chance * 3  # nowhere near reliable carry-over

    def test_exhaustive_strength_preserved(self):
        """P-SSP's split guess succeeds exactly when the guessed canary is
        right — same exhaustive-search strength as SSP (§III-C1)."""
        entropy = EntropySource(14)
        canary = entropy.word(BITS)
        successes = 0
        trials = 40_000
        for _ in range(trials):
            guess = entropy.word(BITS)
            c0 = entropy.word(BITS)
            c1 = c0 ^ guess
            successes += int((c0 ^ c1) == canary)
        rate = successes / trials
        assert abs(rate - 1 / DOMAIN) < 0.02
