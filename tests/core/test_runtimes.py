"""Direct unit tests for the scheme runtimes (preload-level behaviour)."""

from repro.core.baselines import DYNAGUARD_CAB_ENTRIES, DCRRuntime, DynaGuardRuntime
from repro.core.deploy import build, deploy
from repro.core.schemes import (
    GLOBAL_BUFFER_ENTRIES,
    GlobalBufferRuntime,
    OWFRuntime,
    RAFRuntime,
    SchemeRuntime,
)
from repro.kernel.kernel import Kernel
from repro.libc.builtins import build_natives

SIMPLE = "int main() { return 0; }"


def bare_process(seed=7):
    kernel = Kernel(seed)
    binary = build(SIMPLE, "none", name="t")
    process, _ = deploy(kernel, binary, "none")
    return kernel, process


class TestBaseRuntime:
    def test_noop_install(self):
        _, process = bare_process()
        SchemeRuntime().install(process)
        assert process.fork_hooks == []

    def test_no_preloads(self):
        assert SchemeRuntime().preload_binaries() == []


class TestRAFRuntime:
    def test_fork_hook_renews_child_canary_only(self):
        kernel, process = bare_process()
        RAFRuntime().install(process)
        before = process.tls.canary
        child = kernel.fork(process)
        assert process.tls.canary == before
        assert child.tls.canary != before

    def test_new_canary_keeps_terminator(self):
        kernel, process = bare_process()
        RAFRuntime().install(process)
        child = kernel.fork(process)
        assert child.tls.canary & 0xFF == 0


class TestOWFRuntime:
    def test_key_parked_in_r12_r13(self):
        _, process = bare_process()
        OWFRuntime().install(process)
        assert process.registers.read("r12") != 0
        assert process.registers.read("r13") != 0

    def test_key_differs_per_process(self):
        _, a = bare_process(seed=1)
        _, b = bare_process(seed=2)
        OWFRuntime().install(a)
        OWFRuntime().install(b)
        assert a.registers.read("r12") != b.registers.read("r12")

    def test_threads_share_the_key(self):
        kernel, process = bare_process()
        OWFRuntime().install(process)
        thread = kernel.create_thread(process)
        assert thread.registers.read("r12") == process.registers.read("r12")
        assert thread.registers.read("r13") == process.registers.read("r13")

    def test_fork_inherits_the_key(self):
        kernel, process = bare_process()
        OWFRuntime().install(process)
        child = kernel.fork(process)
        assert child.registers.read("r12") == process.registers.read("r12")


class TestGlobalBufferRuntime:
    def test_buffer_allocated_from_heap(self):
        _, process = bare_process()
        heap = process.memory.segment("heap")
        brk_before = process.brk
        GlobalBufferRuntime().install(process)
        assert process.tls.global_buffer_base == brk_before
        assert process.brk == brk_before + 8 * GLOBAL_BUFFER_ENTRIES
        assert heap.base <= process.tls.global_buffer_base < heap.end

    def test_count_starts_at_zero(self):
        _, process = bare_process()
        GlobalBufferRuntime().install(process)
        assert process.tls.global_buffer_count == 0

    def test_thread_gets_its_own_buffer(self):
        kernel, process = bare_process()
        GlobalBufferRuntime().install(process)
        thread = kernel.create_thread(process)
        assert thread.tls.global_buffer_base != process.tls.global_buffer_base


class TestDynaGuardRuntime:
    def test_cab_allocated(self):
        _, process = bare_process()
        DynaGuardRuntime().install(process)
        assert process.tls.cab_base != 0
        assert process.tls.cab_index == 0

    def test_fork_rewrites_recorded_canaries(self):
        kernel, process = bare_process()
        runtime = DynaGuardRuntime()
        runtime.install(process)
        # Simulate a protected frame: record a canary address in the CAB.
        old = process.tls.canary
        slot = process.memory.segment("stack").end - 0x200
        process.memory.write_word(slot, old)
        process.memory.write_word(process.tls.cab_base, slot)
        process.tls.cab_index = 1
        child = kernel.fork(process)
        assert child.tls.canary != old
        assert child.memory.read_word(slot) == child.tls.canary
        # The parent is untouched.
        assert process.memory.read_word(slot) == old

    def test_fork_skips_slots_that_no_longer_hold_the_canary(self):
        kernel, process = bare_process()
        DynaGuardRuntime().install(process)
        slot = process.memory.segment("stack").end - 0x200
        process.memory.write_word(slot, 0x1234)  # reused for other data
        process.memory.write_word(process.tls.cab_base, slot)
        process.tls.cab_index = 1
        child = kernel.fork(process)
        assert child.memory.read_word(slot) == 0x1234  # left alone


class TestDCRRuntime:
    def test_anchor_planted_at_stack_top(self):
        _, process = bare_process()
        DCRRuntime().install(process)
        stack = process.memory.segment("stack")
        assert process.tls.dcr_head == stack.end - 8
        assert process.memory.read_word(stack.end - 8) == process.tls.canary

    def test_fork_rerandomizes_the_chain(self):
        kernel, process = bare_process()
        DCRRuntime().install(process)
        old = process.tls.canary
        anchor = process.tls.dcr_head
        # Build one chained node 64 words below the anchor.
        node = anchor - 64 * 8
        process.memory.write_word(node, old ^ 64)
        process.tls.dcr_head = node
        child = kernel.fork(process)
        new = child.tls.canary
        assert new != old
        assert child.memory.read_word(node) == new ^ 64  # offset preserved
        assert child.memory.read_word(anchor) == new     # terminator node
