"""Ablation variants (light versions of the ablation benches)."""

import pytest

from repro.compiler.codegen import compile_source
from repro.core.ablations import (
    NoNonceOWFPass,
    instrument_binary_inline,
    register_ablation_schemes,
)
from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


class TestNoNonceOWF:
    def test_registration_idempotent(self):
        register_ablation_schemes()
        register_ablation_schemes()

    def test_canary_constant_across_forks(self):
        """The weakness: without the nonce, forks share the stack canary."""
        register_ablation_schemes()
        kernel = Kernel(81)
        binary = build(VICTIM, "pssp-owf-nononce", name="v")
        parent, _ = deploy(kernel, binary, "pssp-owf-nononce")

        def frame_cipher(process):
            captured = {}

            def trace(name, index, instruction):
                if name != "handler" or instruction.note in ("frame", "spill"):
                    return
                rbp = process.registers.read("rbp")
                try:
                    captured["cipher"] = process.memory.read(rbp - 24, 16)
                except Exception:
                    pass

            process.cpu.trace = trace
            process.feed_stdin(b"x")
            process.call("handler", (1,))
            process.cpu.trace = None
            return captured.get("cipher")

        ciphers = set()
        for _ in range(3):
            child = kernel.fork(parent)
            ciphers.add(frame_cipher(child))
            kernel.reap(child)
        assert len(ciphers) == 1  # deterministic canary = attackable

    def test_with_nonce_canary_varies(self):
        kernel = Kernel(82)
        binary = build(VICTIM, "pssp-owf", name="v")
        parent, _ = deploy(kernel, binary, "pssp-owf")
        nonces = set()
        for _ in range(3):
            child = kernel.fork(parent)

            def trace(name, index, instruction, child=child, sink=nonces):
                if name != "handler" or instruction.note in ("frame", "spill"):
                    return
                rbp = child.registers.read("rbp")
                try:
                    sink.add(child.memory.read_word(rbp - 8))
                except Exception:
                    pass

            child.cpu.trace = trace
            child.feed_stdin(b"x")
            child.call("handler", (1,))
            kernel.reap(child)
        assert len(nonces) >= 3  # tsc nonce differs per call

    def test_still_detects_blind_overflow(self):
        register_ablation_schemes()
        kernel = Kernel(83)
        binary = build(VICTIM, "pssp-owf-nononce", name="v")
        process, _ = deploy(kernel, binary, "pssp-owf-nononce")
        process.feed_stdin(b"A" * 200)
        assert process.call("handler", (200,)).smashed


class TestTlsHalfVariant:
    """The §VII-C rejected design, reproduced to confirm the rejection."""

    def _deploy(self, seed):
        register_ablation_schemes()
        kernel = Kernel(seed)
        binary = build(VICTIM, "pssp-tls-half", name="v")
        process, _ = deploy(kernel, binary, "pssp-tls-half")
        return kernel, process

    def test_detects_overflow_within_one_process(self):
        # Inside a single process the scheme is sound...
        _, process = self._deploy(86)
        process.feed_stdin(b"A" * 200)
        assert process.call("handler", (200,)).smashed

    def test_benign_within_one_process(self):
        _, process = self._deploy(87)
        process.feed_stdin(b"hi")
        assert process.call("handler", (2,)).state == "exited"

    def test_dooms_children_returning_through_parent_frames(self):
        # ...but the paper's predicted crash materialises on fork: the
        # child's refreshed C0 no longer matches inherited C1 values.
        from repro.attacks.correctness import probe_fork_correctness

        register_ablation_schemes()
        report = probe_fork_correctness("pssp-tls-half")
        assert report.parent_ok
        assert not report.child_ok          # "doomed to crash"
        assert report.child_signal == "SIGABRT"

    def test_real_pssp_has_no_such_problem(self):
        from repro.attacks.correctness import probe_fork_correctness

        assert probe_fork_correctness("pssp").fork_correct


class TestInlineRewrite:
    def test_grows_the_binary(self):
        native = compile_source(VICTIM, protection="ssp", name="v")
        inline = instrument_binary_inline(native)
        assert inline.total_size() > native.total_size()

    def test_semantics_preserved(self):
        register_ablation_schemes()
        kernel = Kernel(84)
        binary = build(VICTIM, "pssp-binary-inline", name="v")
        process, _ = deploy(kernel, binary, "pssp-binary-inline")
        process.feed_stdin(b"ok")
        assert process.call("handler", (2,)).state == "exited"

    def test_detection_preserved(self):
        register_ablation_schemes()
        kernel = Kernel(85)
        binary = build(VICTIM, "pssp-binary-inline", name="v")
        process, _ = deploy(kernel, binary, "pssp-binary-inline")
        process.feed_stdin(b"A" * 200)
        assert process.call("handler", (200,)).smashed
