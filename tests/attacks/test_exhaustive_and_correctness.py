"""Exhaustive search models and the fork-correctness probe."""

import pytest

from repro.attacks.correctness import probe_fork_correctness
from repro.attacks.exhaustive import (
    exhaustive_attack,
    survival_probability_montecarlo,
)
from repro.attacks.oracle import ForkingServer
from repro.attacks.payloads import frame_map
from repro.core.deploy import build, deploy
from repro.crypto.random import EntropySource
from repro.kernel.kernel import Kernel

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


class TestExhaustiveEmpirical:
    @pytest.mark.parametrize("scheme", ["ssp", "pssp"])
    def test_small_budget_never_wins(self, scheme):
        kernel = Kernel(61)
        binary = build(VICTIM, scheme, name="srv")
        parent, _ = deploy(kernel, binary, scheme)
        server = ForkingServer(kernel, parent)
        frame = frame_map(binary, "handler")
        report = exhaustive_attack(
            server, frame, EntropySource(1), max_trials=120,
            scheme_pair_split=(scheme == "pssp"),
        )
        assert not report.success  # 2^-64 per trial: 120 trials is nothing
        assert report.trials == 120


class TestMonteCarloEquivalence:
    def test_ssp_rate_matches_width(self):
        rate = survival_probability_montecarlo("ssp", bits=12, samples=40_000)
        assert abs(rate - 2**-12) < 5e-4

    def test_pssp_rate_equals_ssp_rate(self):
        """§III-C1: P-SSP and SSP have identical exhaustive-search
        strength for equal TLS-canary width."""
        ssp = survival_probability_montecarlo("ssp", bits=12, samples=60_000)
        pssp = survival_probability_montecarlo("pssp", bits=12, samples=60_000)
        assert abs(ssp - pssp) < 1.5e-3

    def test_binary_path_halves_the_exponent(self):
        """§V-C caveat: folded 32-bit canaries are weaker — here at width
        12, the packed path behaves like width 6."""
        folded = survival_probability_montecarlo(
            "pssp-binary", bits=12, samples=40_000
        )
        assert abs(folded - 2**-6) < 5e-3

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            survival_probability_montecarlo("rot13")


class TestForkCorrectness:
    def test_raf_ssp_breaks_children(self):
        report = probe_fork_correctness("raf-ssp")
        assert report.parent_ok
        assert not report.child_ok
        assert report.child_signal == "SIGABRT"
        assert not report.fork_correct

    @pytest.mark.parametrize(
        "scheme",
        ["ssp", "pssp", "pssp-nt", "pssp-owf", "pssp-gb", "dynaguard", "dcr",
         "pssp-binary", "pssp-binary-static"],
    )
    def test_everyone_else_is_correct(self, scheme):
        report = probe_fork_correctness(scheme)
        assert report.fork_correct, (
            f"{scheme} child died returning into an inherited frame "
            f"({report.child_signal})"
        )
