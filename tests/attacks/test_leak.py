"""Leak-and-replay: the exposure-resilience matrix (paper §IV-C).

Expected outcomes:

===========  ========  =========
scheme       hijacked  detected
===========  ========  =========
ssp          yes       no
pssp         yes       no        (single point of failure, paper admits)
pssp-nt      yes       no        (any XOR-consistent pair verifies)
pssp-owf     no        yes       (canary bound to ret+nonce)
pssp-gb      no        yes       (C1 half never exposed on the stack)
===========  ========  =========
"""

import pytest

from repro.attacks.leak import leak_and_replay
from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

LEAKY_VICTIM = """
int win() {
    puts("PWNED");
    return 1;
}

int leaky(int n) {
    char buf[32];
    buf[0] = 1;
    return buf[0];
}

int target(int n) {
    char buf[32];
    read(0, buf, 4096);
    return 0;
}

int main() { return 0; }
"""


def run_leak(scheme, seed=51):
    kernel = Kernel(seed)
    binary = build(LEAKY_VICTIM, scheme, name="victim")
    process, _ = deploy(kernel, binary, scheme)
    return leak_and_replay(kernel, process, binary)


class TestVulnerableSchemes:
    @pytest.mark.parametrize("scheme", ["ssp", "pssp", "pssp-nt"])
    def test_replay_hijacks(self, scheme):
        report = run_leak(scheme)
        assert report.hijacked, f"{scheme} should fall to leak-replay"
        assert not report.detected

    def test_leak_captures_canary_words(self):
        report = run_leak("ssp")
        assert 8 in report.leaked
        assert report.leaked[8] != 0


class TestResilientSchemes:
    def test_owf_detects_replay(self):
        report = run_leak("pssp-owf")
        assert not report.hijacked
        assert report.detected

    def test_gb_detects_replay(self):
        report = run_leak("pssp-gb")
        assert not report.hijacked
        assert report.detected
