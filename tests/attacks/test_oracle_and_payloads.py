"""Oracle servers and payload construction."""

import pytest

from repro.attacks.oracle import ForkingServer, ThreadedServer
from repro.attacks.payloads import PayloadBuilder, frame_map
from repro.core.deploy import build, deploy
from repro.errors import ProtectionError
from repro.kernel.kernel import Kernel

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


def make_server(scheme="ssp", seed=41, threaded=False):
    kernel = Kernel(seed)
    binary = build(VICTIM, scheme, name="srv")
    parent, _ = deploy(kernel, binary, scheme)
    cls = ThreadedServer if threaded else ForkingServer
    return cls(kernel, parent), binary


class TestForkingServer:
    def test_benign_request_survives(self):
        server, _ = make_server()
        response = server.handle_request(b"hello")
        assert not response.crashed

    def test_smash_crashes_worker_not_parent(self):
        server, _ = make_server()
        response = server.handle_request(b"A" * 200)
        assert response.crashed
        assert server.parent.alive or server.parent.state == "ready"

    def test_parent_survives_many_crashes(self):
        server, _ = make_server()
        for _ in range(10):
            assert server.handle_request(b"A" * 200).crashed
        assert server.handle_request(b"ok").crashed is False
        assert server.requests_served == 11

    def test_each_request_fresh_stdin(self):
        server, _ = make_server()
        server.handle_request(b"A" * 200)
        assert not server.handle_request(b"short").crashed


class TestThreadedServer:
    def test_benign_and_smash(self):
        server, _ = make_server(threaded=True)
        assert not server.handle_request(b"tiny").crashed
        assert server.handle_request(b"A" * 200).crashed


class TestFrameMap:
    def test_layout_for_ssp(self):
        _, binary = make_server("ssp")
        frame = frame_map(binary, "handler")
        assert frame.buffer_size == 64
        assert frame.canary_slots == [8]
        assert frame.canary_region_size == 8
        assert frame.canary_region_start == frame.buffer_offset - 8
        assert frame.return_address_position == frame.buffer_offset + 8

    def test_layout_for_pssp(self):
        _, binary = make_server("pssp")
        frame = frame_map(binary, "handler")
        assert frame.canary_slots == [8, 16]
        assert frame.canary_region_size == 16

    def test_bufferless_function_rejected(self):
        binary = build("int f(int n) { return n; }\nint main() { return 0; }",
                       "ssp", name="x")
        with pytest.raises(ProtectionError):
            frame_map(binary, "f")


class TestPayloadBuilder:
    def _builder(self, scheme="ssp"):
        _, binary = make_server(scheme)
        return PayloadBuilder(frame_map(binary, "handler"))

    def test_benign_stays_inside_buffer(self):
        builder = self._builder()
        assert len(builder.benign()) < builder.frame.buffer_size

    def test_benign_too_long_rejected(self):
        builder = self._builder()
        with pytest.raises(ValueError):
            builder.benign(length=64)

    def test_smash_reaches_return_address(self):
        builder = self._builder()
        payload = builder.smash()
        assert len(payload) == builder.frame.return_address_position + 8

    def test_probe_length_tracks_known_bytes(self):
        builder = self._builder()
        start = builder.frame.canary_region_start
        assert len(builder.probe(b"", 0)) == start + 1
        assert len(builder.probe(b"ab", 0)) == start + 3

    def test_with_canaries_places_values(self):
        builder = self._builder()
        payload = builder.with_canaries({8: 0x1122334455667788},
                                        new_return=0xAABB, new_rbp=0xCCDD)
        position = builder.frame.slot_position(8)
        assert payload[position:position + 8] == bytes.fromhex("8877665544332211")
        ret = builder.frame.return_address_position
        assert payload[ret:ret + 8] == (0xAABB).to_bytes(8, "little")

    def test_with_canaries_stops_before_rbp_without_return(self):
        builder = self._builder()
        payload = builder.with_canaries({8: 1})
        assert len(payload) == builder.frame.saved_rbp_position

    def test_correct_canary_payload_survives_ssp(self):
        # The full loop: read the worker's real canary (host-side, as a
        # perfect disclosure), replay it, and the epilogue accepts.
        server, binary = make_server("ssp")
        worker = server.worker()
        canary = worker.tls.canary
        server.kernel.reap(worker)
        builder = PayloadBuilder(frame_map(binary, "handler"))
        payload = builder.with_canaries({8: canary})
        assert not server.handle_request(payload).crashed

    def test_wrong_canary_payload_crashes_ssp(self):
        server, binary = make_server("ssp")
        builder = PayloadBuilder(frame_map(binary, "handler"))
        payload = builder.with_canaries({8: 0x4141414141414141})
        assert server.handle_request(payload).crashed
