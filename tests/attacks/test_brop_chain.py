"""The complete BROP-style kill chain against SSP, and threaded variants.

Canary recovery alone is reconnaissance; the payoff is the control-flow
hijack that follows (paper §II-B cites Hacking Blind).  This test runs
the full chain: byte-by-byte recovery → exploit payload with the
recovered canary and a redirected return address → code execution in a
worker.
"""

import pytest

from repro.attacks.byte_by_byte import byte_by_byte_attack
from repro.attacks.oracle import ForkingServer, ThreadedServer
from repro.attacks.payloads import PayloadBuilder, frame_map
from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

VICTIM_WITH_GADGET = """
int secret_admin_shell() {
    puts("PWNED: shell spawned");
    exit(66);
    return 0;
}

int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}

int main() { return 0; }
"""


class TestFullChainAgainstSSP:
    @pytest.fixture(scope="class")
    def compromised(self):
        kernel = Kernel(777)
        binary = build(VICTIM_WITH_GADGET, "ssp", name="srv")
        parent, _ = deploy(kernel, binary, "ssp")
        server = ForkingServer(kernel, parent)
        frame = frame_map(binary, "handler")
        report = byte_by_byte_attack(server, frame, max_trials=6000)
        return kernel, binary, parent, server, frame, report

    def test_stage1_canary_recovered(self, compromised):
        *_, report = compromised
        assert report.success

    def test_stage2_hijack_executes_gadget(self, compromised):
        kernel, binary, parent, server, frame, report = compromised
        builder = PayloadBuilder(frame)
        gadget = None
        # The adversary knows the binary (paper model): find the gadget
        # address from a disassembled copy.
        child = server.worker()
        gadget = child.image.address_of("secret_admin_shell")
        sane_rbp = child.registers.read("rsp")
        kernel.reap(child)
        payload = builder.with_canaries(
            {frame.canary_slots[0]: report.recovered_words[0]},
            new_return=gadget,
            new_rbp=sane_rbp,
        )
        response = server.handle_request(payload)
        assert b"PWNED" in response.output
        # The gadget exit()s with its own status: full code execution.
        assert response.result.exit_status == 66

    def test_same_payload_fails_under_pssp(self):
        """The recovered-canary exploit is dead on arrival against P-SSP:
        the canary it 'knows' belonged to a worker that no longer exists."""
        kernel = Kernel(778)
        binary = build(VICTIM_WITH_GADGET, "pssp", name="srv")
        parent, _ = deploy(kernel, binary, "pssp")
        server = ForkingServer(kernel, parent)
        frame = frame_map(binary, "handler")
        # Even a perfect disclosure of one worker's pair...
        worker = server.worker()
        c0, c1 = worker.tls.shadow_c0, worker.tls.shadow_c1
        kernel.reap(worker)
        gadget_worker = server.worker()
        gadget = gadget_worker.image.address_of("secret_admin_shell")
        kernel.reap(gadget_worker)
        builder = PayloadBuilder(frame)
        payload = builder.with_canaries(
            {frame.canary_slots[0]: c0, frame.canary_slots[1]: c1},
            new_return=gadget,
        )
        # ...is stale by the next fork.  (C0^C1==C still holds, so this
        # *does* pass the check — the pair-consistency property — making
        # the point that P-SSP's protection is against *guessing*, not
        # perfect disclosure; §IV-C motivates OWF for the latter.)
        response = server.handle_request(payload)
        assert b"PWNED" in response.output  # disclosure beats P-SSP...

        # ...but the byte-by-byte *guessing* path is closed:
        report = byte_by_byte_attack(server, frame, max_trials=2500)
        assert not report.success


class TestThreadedServers:
    def test_byte_by_byte_fails_on_threaded_pssp(self):
        """pthread_create workers get fresh shadow pairs too (§V-A wraps
        pthread_create alongside fork)."""
        kernel = Kernel(779)
        binary = build(VICTIM_WITH_GADGET, "pssp", name="srv")
        parent, _ = deploy(kernel, binary, "pssp")
        server = ThreadedServer(kernel, parent)
        frame = frame_map(binary, "handler")
        report = byte_by_byte_attack(server, frame, max_trials=2000)
        assert not report.success

    def test_byte_by_byte_succeeds_on_threaded_ssp(self):
        kernel = Kernel(780)
        binary = build(VICTIM_WITH_GADGET, "ssp", name="srv")
        parent, _ = deploy(kernel, binary, "ssp")
        server = ThreadedServer(kernel, parent)
        frame = frame_map(binary, "handler")
        report = byte_by_byte_attack(server, frame, max_trials=6000)
        assert report.success
