"""Blind reconnaissance: geometry discovery without the binary."""

import pytest

from repro.attacks.oracle import ForkingServer
from repro.attacks.payloads import frame_map
from repro.attacks.recon import blind_byte_by_byte, find_canary_start
from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

VICTIM_TEMPLATE = """
int handler(int n) {{
    char buf[{size}];
    read(0, buf, 4096);
    return 0;
}}
int main() {{ return 0; }}
"""


def make_server(scheme, buffer_size=64, seed=871):
    kernel = Kernel(seed)
    source = VICTIM_TEMPLATE.format(size=buffer_size)
    binary = build(source, scheme, name="srv")
    parent, _ = deploy(kernel, binary, scheme)
    return ForkingServer(kernel, parent), binary


class TestFindCanaryStart:
    @pytest.mark.parametrize("buffer_size", [16, 64, 96])
    def test_locates_the_boundary_under_ssp(self, buffer_size):
        server, binary = make_server("ssp", buffer_size)
        recon = find_canary_start(server, max_length=buffer_size + 32)
        frame = frame_map(binary, "handler")
        assert recon.success
        assert recon.canary_start == frame.canary_region_start

    def test_locates_the_boundary_under_pssp(self):
        # Geometry discovery works against P-SSP too — the defence hides
        # the canary *value*, not the layout.
        server, binary = make_server("pssp")
        recon = find_canary_start(server, max_length=128)
        frame = frame_map(binary, "handler")
        assert recon.success
        assert recon.canary_start == frame.canary_region_start

    def test_fails_gracefully_when_nothing_crashes(self):
        # A huge buffer: probes never reach the canary within the cap.
        server, _ = make_server("ssp", buffer_size=96)
        recon = find_canary_start(server, max_length=40)
        assert not recon.success
        assert recon.canary_start is None


class TestBlindChain:
    def test_blind_attack_breaks_ssp(self):
        server, binary = make_server("ssp")
        recon, report = blind_byte_by_byte(server, max_length=128)
        assert recon.success
        assert report is not None and report.success
        worker = server.worker()
        assert report.recovered_words[0] == worker.tls.canary

    def test_blind_attack_stalls_on_pssp(self):
        server, _ = make_server("pssp")
        recon, report = blind_byte_by_byte(
            server, max_length=128, max_trials=2500
        )
        assert recon.success            # geometry found...
        assert report is not None
        assert not report.success       # ...but the canary never accumulates
