"""The byte-by-byte attack: must break SSP, must stall everywhere else."""

import pytest

from repro.attacks.byte_by_byte import byte_by_byte_attack, expected_ssp_trials
from repro.attacks.oracle import ForkingServer
from repro.attacks.payloads import frame_map
from repro.core.deploy import build, deploy
from repro.crypto.random import EntropySource
from repro.kernel.kernel import Kernel

#: byte-by-byte attack campaigns — excluded from the CI quick-signal subset.
pytestmark = pytest.mark.slow

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


def make_server(scheme, seed=301):
    kernel = Kernel(seed)
    binary = build(VICTIM, scheme, name="srv")
    parent, _ = deploy(kernel, binary, scheme)
    return ForkingServer(kernel, parent), frame_map(binary, "handler")


class TestAgainstSSP:
    def test_attack_succeeds(self):
        server, frame = make_server("ssp")
        report = byte_by_byte_attack(server, frame, max_trials=6000)
        assert report.success
        assert report.verified

    def test_trials_near_paper_estimate(self):
        # Paper: ~1024 average; terminator byte makes the first byte free.
        server, frame = make_server("ssp")
        report = byte_by_byte_attack(server, frame, max_trials=6000)
        assert 8 <= report.trials <= 2200

    def test_recovers_the_actual_canary(self):
        server, frame = make_server("ssp")
        report = byte_by_byte_attack(server, frame, max_trials=6000)
        child = server.worker()
        assert report.recovered_words[0] == child.tls.canary

    def test_first_byte_is_terminator(self):
        server, frame = make_server("ssp")
        report = byte_by_byte_attack(server, frame, max_trials=6000)
        assert report.recovered[0] == 0x00
        assert report.per_byte_trials[0] == 1  # guess order starts at 0


@pytest.mark.parametrize("scheme", ["pssp", "pssp-nt", "pssp-gb", "raf-ssp",
                                    "dynaguard", "dcr"])
class TestAgainstRerandomizingSchemes:
    def test_attack_fails(self, scheme):
        server, frame = make_server(scheme)
        report = byte_by_byte_attack(server, frame, max_trials=3000)
        assert not report.success, f"byte-by-byte broke {scheme}!"

    def test_no_accumulated_advantage(self, scheme):
        # The attacker never gets far into the canary region: each
        # "confirmed" byte is stale by the next fork, so progress stalls
        # well short of the full region.
        server, frame = make_server(scheme)
        report = byte_by_byte_attack(server, frame, max_trials=3000)
        assert len(report.recovered) < frame.canary_region_size


class TestAgainstInstrumentedPSSP:
    def test_attack_fails_on_rewritten_binary(self):
        server, frame = make_server("pssp-binary")
        report = byte_by_byte_attack(server, frame, max_trials=2500)
        assert not report.success


class TestAnalytics:
    def test_expected_trials_with_terminator(self):
        assert expected_ssp_trials(8) == 1 + 7 * 128.5

    def test_expected_trials_without_terminator(self):
        assert expected_ssp_trials(8, terminator=False) == 8 * 128.5

    def test_random_guess_order_also_breaks_ssp(self):
        server, frame = make_server("ssp", seed=302)
        report = byte_by_byte_attack(
            server, frame, max_trials=8000, entropy=EntropySource(7)
        )
        assert report.success
