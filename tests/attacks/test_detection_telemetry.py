"""Defender-side crash-rate telemetry."""

from repro.attacks.byte_by_byte import byte_by_byte_attack
from repro.attacks.detection import CrashRateMonitor
from repro.attacks.oracle import ForkingServer
from repro.attacks.payloads import frame_map
from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

VICTIM = """
int handler(int n) {
    char buf[64];
    read(0, buf, 4096);
    return 0;
}
int main() { return 0; }
"""


def monitored_server(scheme, seed=951, **monitor_kw):
    kernel = Kernel(seed)
    binary = build(VICTIM, scheme, name="srv")
    parent, _ = deploy(kernel, binary, scheme)
    server = ForkingServer(kernel, parent)
    return CrashRateMonitor(server, **monitor_kw), binary


class TestBenignTraffic:
    def test_no_alarm_on_clean_traffic(self):
        monitor, _ = monitored_server("pssp")
        for index in range(60):
            monitor.handle_request(f"GET /p{index}".encode())
        assert not monitor.alarm
        assert monitor.alarmed_at is None
        assert monitor.crashes == 0

    def test_sporadic_crashes_stay_quiet(self):
        # A buggy 5% of requests crash: below any sane threshold.
        monitor, _ = monitored_server("pssp", threshold=0.5)
        for index in range(60):
            payload = b"A" * (200 if index % 20 == 0 else 8)
            monitor.handle_request(payload)
        assert not monitor.alarm

    def test_warmup_cannot_false_alarm(self):
        monitor, _ = monitored_server("pssp", window=50)
        monitor.handle_request(b"A" * 200)  # one crash, no data yet
        assert not monitor.alarm


class TestCampaignDetection:
    def test_byte_by_byte_trips_the_alarm_fast(self):
        monitor, binary = monitored_server("pssp", window=50, threshold=0.5)
        frame = frame_map(binary, "handler")
        byte_by_byte_attack(monitor, frame, max_trials=600)
        assert monitor.alarm
        # The alarm fires within the first window-and-a-bit of probes.
        assert monitor.alarmed_at is not None
        assert monitor.alarmed_at <= 80

    def test_campaign_against_ssp_also_visible(self):
        # Even the *successful* attack on SSP is loud: ~127 crashes per
        # recovered byte.
        monitor, binary = monitored_server("ssp", window=50, threshold=0.5)
        frame = frame_map(binary, "handler")
        report = byte_by_byte_attack(monitor, frame, max_trials=6000)
        assert report.success      # the defence fell...
        assert monitor.alarm       # ...but nobody can say it was silent
        assert monitor.window_crash_rate > 0.9

    def test_stats_snapshot(self):
        monitor, binary = monitored_server("pssp")
        frame = frame_map(binary, "handler")
        byte_by_byte_attack(monitor, frame, max_trials=120)
        stats = monitor.stats()
        assert stats.requests == 120
        assert stats.crashes > 100
        assert stats.alarmed
