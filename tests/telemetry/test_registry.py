"""Instrument semantics: counters, gauges, histograms, spans, the ring."""

import pytest

from repro import telemetry
from repro.telemetry.events import EventRing
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    SpanTimer,
)


class TestCounter:
    def test_monotonic_add(self):
        counter = Counter("c")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_negative_add_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="negative"):
            counter.add(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.add(7)
        counter.reset()
        assert counter.snapshot() == 0


class TestGauge:
    def test_set_and_add_both_directions(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError, match="ascend"):
            Histogram("h", bounds=(10.0, 1.0))
        with pytest.raises(ValueError, match="ascend"):
            Histogram("h", bounds=())

    def test_bucket_placement_including_inf(self):
        histogram = Histogram("h", bounds=(10.0, 100.0))
        histogram.observe(5)      # <= 10
        histogram.observe(10)     # <= 10 (upper bounds are inclusive)
        histogram.observe(50)     # <= 100
        histogram.observe(1000)   # +Inf
        assert histogram.counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.total == 1065

    def test_reset(self):
        histogram = Histogram("h", bounds=(1.0,))
        histogram.observe(2)
        histogram.reset()
        assert histogram.snapshot() == {
            "bounds": [1.0], "counts": [0, 0], "sum": 0.0, "count": 0,
        }


class TestSpanTimer:
    def test_pluggable_clock(self):
        histogram = Histogram("h", bounds=(10.0, 100.0))
        ticks = iter([100.0, 140.0])
        timer = SpanTimer(histogram, clock=lambda: next(ticks))
        with timer:
            pass
        assert timer.last == 40.0
        assert histogram.count == 1
        assert histogram.counts == [0, 1, 0]


class TestRegistry:
    def test_lookup_returns_same_instrument(self):
        registry = Registry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_rejected(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_and_delta(self):
        registry = Registry()
        registry.counter("a").add(2)
        registry.histogram("h", bounds=(10.0,)).observe(3)
        before = registry.snapshot()
        registry.counter("a").add(5)
        registry.counter("new").add(1)
        registry.histogram("h", bounds=(10.0,)).observe(100)
        delta = registry.delta(before)
        assert delta["a"] == 5
        assert delta["new"] == 1  # created after the snapshot: full value
        assert delta["h"] == {
            "bounds": [10.0], "counts": [0, 1], "sum": 100.0, "count": 1,
        }

    def test_generation_bumps_only_on_state_flips(self):
        registry = Registry()
        start = registry.generation
        registry.enable()           # already enabled: no bump
        assert registry.generation == start
        registry.disable()
        registry.disable()          # already disabled: no bump
        registry.enable()
        registry.reset()
        assert registry.generation == start + 3

    def test_reset_zeroes_but_keeps_structure(self):
        registry = Registry()
        registry.counter("a", "kept help").add(9)
        registry.reset()
        assert registry.counter("a").value == 0
        assert registry.counter("a").help == "kept help"

    def test_render_prometheus(self):
        registry = Registry()
        registry.counter("hits", "hits observed").add(3)
        histogram = registry.histogram("lat", bounds=(10.0, 100.0))
        histogram.observe(5)
        histogram.observe(50)
        histogram.observe(500)
        text = registry.render_prometheus()
        assert "# HELP hits hits observed" in text
        assert "# TYPE hits counter" in text
        assert "hits 3" in text
        # Buckets are cumulative, with the implicit +Inf last.
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="100"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 555" in text
        assert "lat_count 3" in text


class TestEventRing:
    def test_bounded_with_drop_accounting(self):
        ring = EventRing(capacity=3)
        for index in range(5):
            ring.emit("smash-detected", index=index)
        events = ring.events()
        assert len(events) == 3
        assert ring.dropped == 2
        # Oldest evicted; sequence numbers keep counting.
        assert [event.seq for event in events] == [2, 3, 4]

    def test_sampling_defaults_off(self):
        ring = EventRing()
        ring.emit_sampled("prologue-store")
        assert ring.events() == []
        assert ring.sampled_out == 1

    def test_sampling_keeps_one_in_n(self):
        ring = EventRing(sample_every=3)
        for _ in range(9):
            ring.emit_sampled("prologue-store")
        assert len(ring.events()) == 3
        assert ring.sampled_out == 6

    def test_clear(self):
        ring = EventRing(sample_every=1)
        ring.emit("degradation")
        ring.emit_sampled("rdrand-draw")
        ring.clear()
        assert ring.events() == []
        assert ring.dropped == 0 and ring.sampled_out == 0

    def test_to_json_shape(self):
        ring = EventRing()
        # A field named like a top-level key must survive untouched:
        # payload fields nest under "fields" instead of merging in.
        ring.emit("shadow-refresh", pid=4, kind="decoy", seq=99)
        payload = ring.to_json()
        assert payload["events"] == [
            {
                "seq": 0,
                "kind": "shadow-refresh",
                "fields": {"pid": 4, "kind": "decoy", "seq": 99},
            }
        ]
        assert payload["capacity"] == 512

    def test_event_json_roundtrip(self):
        from repro.telemetry.events import Event

        ring = EventRing()
        ring.emit("fork", pid=7, pages=3)
        restored = Event.from_json(ring.events()[0].to_json())
        assert restored == ring.events()[0]

    def test_sample_every_one_keeps_everything(self):
        ring = EventRing(sample_every=1)
        for index in range(5):
            ring.emit_sampled("prologue-store", index=index)
        assert [event.fields["index"] for event in ring.events()] == \
            [0, 1, 2, 3, 4]
        assert ring.sampled_out == 0

    def test_clear_resets_sampling_phase(self):
        # clear() is a full reset: the 1-in-N phase restarts too, so a
        # cleared ring samples exactly like a freshly constructed one —
        # anything less would make replayed campaigns diverge from fresh
        # ones in which events they keep.
        ring = EventRing(sample_every=3)
        ring.emit_sampled("prologue-store")   # counter 1: sampled out
        ring.emit_sampled("prologue-store")   # counter 2: sampled out
        ring.clear()
        assert ring.sampled_out == 0
        kept_after_clear = []
        for index in range(6):
            ring.emit_sampled("prologue-store", index=index)
            kept_after_clear.append(len(ring.events()))
        fresh = EventRing(sample_every=3)
        kept_fresh = []
        for index in range(6):
            fresh.emit_sampled("prologue-store", index=index)
            kept_fresh.append(len(fresh.events()))
        assert kept_after_clear == kept_fresh == [0, 0, 1, 1, 1, 2]

    def test_dropped_at_exact_capacity_boundary(self):
        ring = EventRing(capacity=4)
        for index in range(4):
            ring.emit("request", index=index)
        # Exactly full: nothing dropped yet.
        assert ring.dropped == 0
        assert [event.seq for event in ring.events()] == [0, 1, 2, 3]
        ring.emit("request", index=4)
        # One past capacity: exactly one dropped, oldest-first preserved.
        assert ring.dropped == 1
        assert [event.seq for event in ring.events()] == [1, 2, 3, 4]

    def test_emit_is_constant_time_when_full(self):
        # The old eviction (`del buffer[0]`) cost O(capacity) per emit;
        # the index-wrapped ring must not.  Emitting into a full ring of
        # 100_000 slots should cost about the same as into one of 100 —
        # under list-shifting it would be ~1000x slower.
        import time

        def emit_cost(capacity: int, emissions: int) -> float:
            ring = EventRing(capacity=capacity)
            for _ in range(capacity):     # pre-fill to capacity
                ring.emit("fill")
            start = time.perf_counter()
            for _ in range(emissions):
                ring.emit("hot", index=1)
            return time.perf_counter() - start

        emissions = 100_000
        small = emit_cost(100, emissions)
        large = emit_cost(100_000, emissions)
        assert large < small * 25, (
            f"emit into a full ring scales with capacity: "
            f"{large:.4f}s vs {small:.4f}s"
        )

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)


class TestModuleHelpers:
    def test_count_noop_while_disabled(self):
        before = telemetry.snapshot()
        telemetry.disable()
        try:
            telemetry.count("canary_smashes_detected_total")
        finally:
            telemetry.enable()
        assert telemetry.delta(before).get(
            "canary_smashes_detected_total", 0
        ) == 0

    def test_event_noop_while_disabled(self):
        held = len(telemetry.ring().events())
        telemetry.disable()
        try:
            telemetry.event("degradation", reason="test")
        finally:
            telemetry.enable()
        assert len(telemetry.ring().events()) == held

    def test_canary_hooks_none_while_disabled(self):
        telemetry.disable()
        try:
            assert telemetry.canary_hooks() is None
        finally:
            telemetry.enable()
        assert telemetry.canary_hooks() is not None
