"""Prometheus exposition format: golden file + scrape-validity lint.

A Prometheus scraper keys HELP/TYPE metadata off the comment lines that
precede each family's samples, so every family must carry both — even
instruments re-created by ``absorb()`` on the parent side of a sharded
campaign, which arrive without help text (the renderer falls back to the
metric name rather than dropping the comment).
"""

import os

from repro import cli, telemetry
from repro.telemetry.registry import Registry

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "prometheus.txt")


def fixture_registry() -> Registry:
    registry = Registry()
    registry.counter(
        "fleet_requests_total", "fleet requests served (all sessions)"
    ).add(12)
    # absorb()-created instruments carry no help text; the renderer
    # must still emit a HELP line (falling back to the name).
    registry.counter("absorbed_total").add(3)
    registry.gauge("breaker_window", "open-window requests remaining").set(5)
    histogram = registry.histogram(
        "fleet_request_cycles", bounds=(10.0, 100.0),
        help="simulated cycles per served fleet request",
    )
    histogram.observe(5)
    histogram.observe(50)
    return registry


def family_name(sample_line: str) -> str:
    """Metric family of one sample line (strips labels + histogram
    series suffixes)."""
    name = sample_line.split("{")[0].split(" ")[0]
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def assert_scrape_valid(text: str) -> None:
    """Every sample must be preceded by its family's HELP and TYPE."""
    helped, typed = set(), set()
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            helped.add(line.split(" ")[2])
        elif line.startswith("# TYPE "):
            typed.add(line.split(" ")[2])
        elif not line.startswith("#"):
            family = family_name(line)
            assert family in helped, f"sample before HELP: {line!r}"
            assert family in typed, f"sample before TYPE: {line!r}"


class TestRenderPrometheus:
    def test_matches_golden_file(self):
        rendered = fixture_registry().render_prometheus()
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = handle.read()
        assert rendered == golden

    def test_fixture_is_scrape_valid(self):
        assert_scrape_valid(fixture_registry().render_prometheus())

    def test_help_falls_back_to_name(self):
        registry = Registry()
        registry.counter("orphan_total").add(1)
        text = registry.render_prometheus()
        assert "# HELP orphan_total orphan_total" in text
        assert "# TYPE orphan_total counter" in text

    def test_help_escapes_newlines_and_backslashes(self):
        registry = Registry()
        registry.counter("odd_total", "line one\nline \\ two").add(1)
        text = registry.render_prometheus()
        assert "# HELP odd_total line one\\nline \\\\ two" in text


class TestStatsPromCLI:
    def test_stats_prom_is_scrape_valid(self, capsys):
        assert telemetry.enabled()
        assert cli.main(["stats", "--schemes", "pssp", "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# HELP canary_prologue_stores_total" in out
        assert_scrape_valid(out)
