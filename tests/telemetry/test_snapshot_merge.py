"""Snapshot merging and absorption: the cross-process telemetry path.

A sharded campaign ships each worker's counter/histogram delta back as
plain data, merges the deltas in canonical shard order, and absorbs
the result into the parent registry.  These tests pin the algebra that
makes that deterministic: ``merge`` is associative with ``Snapshot()``
as identity, and ``absorb`` is exactly "add the delta".
"""

import pytest

from repro.telemetry import Snapshot
from repro.telemetry.registry import Registry


def _hist(bounds, counts, total, count):
    return {"bounds": list(bounds), "counts": list(counts),
            "sum": total, "count": count}


class TestMergeAlgebra:
    def test_empty_is_identity(self):
        snap = Snapshot({"a": 3, "h": _hist((1, 2), [1, 0, 2], 5.0, 3)})
        assert snap.merge(Snapshot()) == snap
        assert Snapshot().merge(snap) == snap
        assert not Snapshot()

    def test_scalars_add(self):
        merged = Snapshot({"a": 2, "b": 1}).merge(Snapshot({"a": 5}))
        assert merged.data == {"a": 7, "b": 1}

    def test_disjoint_instruments_carry_over(self):
        merged = Snapshot({"a": 1}).merge(Snapshot({"b": 2}))
        assert merged.data == {"a": 1, "b": 2}

    def test_histograms_add_bucketwise(self):
        left = Snapshot({"h": _hist((10, 100), [1, 2, 0], 42.0, 3)})
        right = Snapshot({"h": _hist((10, 100), [0, 1, 4], 500.0, 5)})
        merged = left.merge(right)
        assert merged.data["h"] == _hist((10, 100), [1, 3, 4], 542.0, 8)

    def test_associative(self):
        a = Snapshot({"x": 1, "h": _hist((1,), [1, 0], 0.5, 1)})
        b = Snapshot({"x": 2, "y": 7})
        c = Snapshot({"h": _hist((1,), [0, 3], 9.0, 3), "y": 1})
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_merge_does_not_mutate_inputs(self):
        left = Snapshot({"h": _hist((1,), [1, 1], 2.0, 2)})
        right = Snapshot({"h": _hist((1,), [1, 1], 2.0, 2)})
        left.merge(right)
        assert left.data["h"]["counts"] == [1, 1]

    def test_bounds_mismatch_rejected(self):
        left = Snapshot({"h": _hist((1, 2), [0, 0, 0], 0.0, 0)})
        right = Snapshot({"h": _hist((1, 3), [0, 0, 0], 0.0, 0)})
        with pytest.raises(ValueError):
            left.merge(right)

    def test_scalar_histogram_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Snapshot({"x": 1}).merge(
                Snapshot({"x": _hist((1,), [0, 0], 0.0, 0)})
            )

    def test_json_roundtrip(self):
        snap = Snapshot({"a": 3, "h": _hist((1,), [1, 2], 4.0, 3)})
        assert Snapshot.from_json(snap.to_json()) == snap


class TestAbsorb:
    def test_scalar_adds_onto_existing_counter(self):
        reg = Registry()
        reg.counter("jobs_total").add(2)
        reg.absorb(Snapshot({"jobs_total": 3}))
        assert reg.snapshot()["jobs_total"] == 5

    def test_unseen_scalar_becomes_counter(self):
        reg = Registry()
        reg.absorb(Snapshot({"fresh_total": 4}))
        assert reg.counter("fresh_total").value == 4

    def test_unseen_negative_scalar_becomes_gauge(self):
        reg = Registry()
        reg.absorb(Snapshot({"pressure": -2}))
        assert reg.gauge("pressure").value == -2

    def test_histogram_adds_bucketwise(self):
        reg = Registry()
        hist = reg.histogram("lat", (10.0, 100.0))
        hist.observe(5)
        reg.absorb(Snapshot({"lat": _hist((10.0, 100.0), [1, 0, 2], 2005.0, 3)}))
        snap = reg.snapshot()["lat"]
        assert snap["counts"] == [2, 0, 2]
        assert snap["count"] == 4

    def test_histogram_bounds_mismatch_rejected(self):
        reg = Registry()
        reg.histogram("lat", (10.0,))
        with pytest.raises(ValueError):
            reg.absorb(Snapshot({"lat": _hist((99.0,), [0, 0], 0.0, 0)}))

    def test_worker_delta_roundtrip(self):
        # The real campaign flow: worker snapshots, works, ships the
        # delta; the parent absorbs and ends up exactly where a serial
        # run would have.
        parent = Registry()
        parent.counter("seeds_total").add(10)
        worker = Registry()
        worker.counter("seeds_total").add(10)  # inherited pre-fork state
        before = worker.snapshot()
        worker.counter("seeds_total").add(7)
        worker.histogram("cost", (1.0, 10.0)).observe(3.0)
        parent.absorb(Snapshot(worker.delta(before)))
        assert parent.snapshot()["seeds_total"] == 17
        assert parent.snapshot()["cost"]["count"] == 1
