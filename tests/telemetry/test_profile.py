"""Profiler semantics and the Chrome trace-event export."""

import pytest

from repro import telemetry
from repro.core.deploy import build, deploy
from repro.harness.metrics import CLOCK_HZ
from repro.kernel.kernel import Kernel
from repro.telemetry.profile import Profiler

SOURCE = """
int leaf(int n) {
    char buf[16];
    int i; int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) { buf[i % 8] = i; acc = acc + i; }
    return acc;
}
int mid(int n) {
    int i; int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) { acc = acc + leaf(5); }
    return acc;
}
int main() { return mid(6) & 255; }
"""


class TestProfilerUnit:
    def test_segments_and_totals(self):
        profiler = Profiler()
        profiler.enter("main", 0)
        profiler.enter("leaf", 100)
        profiler.enter("main", 160)
        profiler.close(200)
        assert profiler.segments == [
            ("main", 0, 100), ("leaf", 100, 160), ("main", 160, 200),
        ]
        assert profiler.totals == {"main": 140.0, "leaf": 60.0}
        assert profiler.total_cycles == 200

    def test_close_without_open_segment_is_noop(self):
        profiler = Profiler()
        profiler.close(50)
        assert profiler.segments == []

    def test_attribution_hottest_first(self):
        profiler = Profiler()
        profiler.enter("a", 0)
        profiler.enter("b", 10)
        profiler.close(100)
        rows = profiler.attribution()
        assert [row["function"] for row in rows] == ["b", "a"]
        assert rows[0]["cycles"] == 90 and rows[0]["segments"] == 1
        assert sum(row["percent"] for row in rows) == pytest.approx(100.0)
        assert rows[0]["seconds"] == pytest.approx(90 / CLOCK_HZ)

    def test_chrome_trace_structure(self):
        profiler = Profiler()
        profiler.enter("main", 0)
        profiler.close(1000)
        trace = profiler.chrome_trace(process_name="unit")
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"] == {"name": "unit"}
        complete = events[1:]
        assert [event["ph"] for event in complete] == ["X"]
        scale = 1e6 / CLOCK_HZ
        assert complete[0]["ts"] == 0.0
        assert complete[0]["dur"] == pytest.approx(1000 * scale)
        assert trace["otherData"]["clock_hz"] == CLOCK_HZ
        assert trace["otherData"]["total_cycles"] == 1000

    def test_render_mentions_every_function(self):
        profiler = Profiler()
        profiler.enter("alpha", 0)
        profiler.enter("beta", 10)
        profiler.close(20)
        table = profiler.render()
        assert "alpha" in table and "beta" in table and "total" in table


def _profiled_run(fast):
    kernel = Kernel(23)
    binary = build(SOURCE, "pssp", name="profiled")
    process, _ = deploy(kernel, binary, "pssp", fast=fast)
    profiler = Profiler()
    process.cpu.profiler = profiler
    result = process.run()
    assert result.state == "exited"
    return profiler


@pytest.mark.parametrize("fast", [True, False])
def test_live_run_attribution_covers_the_whole_run(fast):
    profiler = _profiled_run(fast)
    names = set(profiler.totals)
    assert {"main", "mid", "leaf"} <= names
    # Segments partition the run: per-function totals sum to the total.
    assert sum(profiler.totals.values()) == pytest.approx(
        profiler.total_cycles
    )
    assert profiler.total_cycles > 0


def test_fast_and_slow_attribution_agree():
    fast = _profiled_run(True)
    slow = _profiled_run(False)
    assert fast.totals == slow.totals
    assert fast.segments == slow.segments


def test_profiler_does_not_perturb_accounting():
    kernel = Kernel(23)
    binary = build(SOURCE, "pssp", name="profiled")
    process, _ = deploy(kernel, binary, "pssp", fast=True)
    reference = process.run()

    kernel = Kernel(23)
    binary = build(SOURCE, "pssp", name="profiled")
    process, _ = deploy(kernel, binary, "pssp", fast=True)
    process.cpu.profiler = Profiler()
    profiled = process.run()

    assert profiled.cycles == reference.cycles
    assert profiled.exit_status == reference.exit_status


def test_clock_constant_is_the_single_source():
    # The profiler's seconds conversion and the benchmark layer's wall
    # clock must share one constant (satellite: CLOCK_HZ single source).
    from repro.telemetry.profile import _clock_hz

    assert _clock_hz() == CLOCK_HZ
    assert telemetry  # imported without pulling the harness eagerly
