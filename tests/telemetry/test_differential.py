"""Telemetry's zero-perturbation contract, checked differentially.

Two claims, both enforced exactly:

* Enabling telemetry must not change a single cycle, instruction, or
  exit status of the simulated run (counters are flushed from the
  deltas the CPU computes anyway).
* Both interpreter paths must report identical counter deltas — the
  fast path counts canary group leaders via decode-time wrapped steps,
  the slow oracle counts the same leaders at the same retire point.
"""

import warnings

import pytest

from repro import telemetry
from repro.core.deploy import build, deploy
from repro.kernel.kernel import Kernel

#: Canary-dense benign workload: 40 protected calls plus libc traffic.
SOURCE = """
int work(int n) {
    char buf[32];
    int i; int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        buf[i % 31] = i;
        acc = acc + buf[i % 31];
    }
    return acc;
}
int main() {
    int i; int total;
    total = 0;
    for (i = 0; i < 40; i = i + 1) { total = total + work(12); }
    return total & 255;
}
"""

SMASH_SOURCE = """
int victim() {
    char buf[16];
    int i;
    for (i = 0; i < 64; i = i + 1) { buf[i] = 65; }
    return 0;
}
int main() { return victim(); }
"""

#: Counters both paths must agree on, bit for bit.
PARITY_COUNTERS = (
    "machine_instructions_total",
    "machine_cycles_total",
    "canary_prologue_stores_total",
    "canary_epilogue_checks_total",
    "rdrand_draws_total",
    "canary_smashes_detected_total",
)


def _run(source, scheme, *, fast, seed=71):
    kernel = Kernel(seed)
    binary = build(source, scheme, name="telemetry-diff")
    process, _ = deploy(kernel, binary, scheme, fast=fast)
    return process.run()


@pytest.mark.parametrize("scheme", ["ssp", "pssp", "pssp-nt", "pssp-owf"])
def test_fast_and_slow_paths_report_identical_counters(scheme):
    before = telemetry.snapshot()
    fast_result = _run(SOURCE, scheme, fast=True)
    fast_delta = telemetry.delta(before)

    before = telemetry.snapshot()
    slow_result = _run(SOURCE, scheme, fast=False)
    slow_delta = telemetry.delta(before)

    assert fast_result.exit_status == slow_result.exit_status
    for name in PARITY_COUNTERS:
        assert fast_delta.get(name, 0) == slow_delta.get(name, 0), name
    # The workload actually exercised the counters under protection.
    if scheme != "none":
        assert fast_delta["canary_prologue_stores_total"] > 0
        assert fast_delta["canary_epilogue_checks_total"] > 0


@pytest.mark.parametrize("fast", [True, False])
def test_enabling_telemetry_is_bit_identical(fast):
    enabled = _run(SOURCE, "pssp", fast=fast)
    telemetry.disable()
    try:
        disabled = _run(SOURCE, "pssp", fast=fast)
    finally:
        telemetry.enable()
    assert enabled.cycles == disabled.cycles
    assert enabled.exit_status == disabled.exit_status
    assert enabled.state == disabled.state


def test_disabled_runs_record_nothing():
    before = telemetry.snapshot()
    telemetry.disable()
    try:
        _run(SOURCE, "pssp", fast=True)
    finally:
        telemetry.enable()
    delta = telemetry.delta(before)
    assert all(
        delta.get(name, 0) == 0 for name in PARITY_COUNTERS
    ), delta


def test_generation_invalidates_cached_decode_wrappers():
    """Flipping telemetry between calls on one live CPU takes effect.

    The decode cache holds wrapped (or unwrapped) canary steps; the
    registry generation must invalidate them in both directions.
    """
    kernel = Kernel(71)
    binary = build(SOURCE, "pssp", name="telemetry-gen")
    process, _ = deploy(kernel, binary, "pssp", fast=True)
    process.run()

    before = telemetry.snapshot()
    process.call("work", (12,))
    counted = telemetry.delta(before)["canary_prologue_stores_total"]
    assert counted == 1

    telemetry.disable()
    try:
        before = telemetry.snapshot()
        process.call("work", (12,))
        assert telemetry.delta(before).get(
            "canary_prologue_stores_total", 0
        ) == 0
    finally:
        telemetry.enable()

    before = telemetry.snapshot()
    process.call("work", (12,))
    assert telemetry.delta(before)["canary_prologue_stores_total"] == 1


def test_smash_increments_counter_and_emits_event():
    held = {event.seq for event in telemetry.ring().events()}
    before = telemetry.snapshot()
    result = _run(SMASH_SOURCE, "pssp", fast=True)
    assert result.smashed
    assert telemetry.delta(before)["canary_smashes_detected_total"] == 1
    fresh = [
        event for event in telemetry.ring().events()
        if event.seq not in held and event.kind == "smash-detected"
    ]
    assert fresh and fresh[-1].fields["function"] == "victim"


def test_sampled_leader_events_flow_when_armed():
    ring = telemetry.ring()
    # Filter by sequence number, not list position: when the bounded
    # ring is already full, new events evict old ones and the length
    # stays put.
    last_seq = max(
        (event.seq for event in ring.events()), default=-1
    )
    ring.sample_every = 10
    try:
        _run(SOURCE, "pssp", fast=True)
    finally:
        ring.sample_every = 0
    kinds = {
        event.kind for event in ring.events() if event.seq > last_seq
    }
    assert "prologue-store" in kinds or "epilogue-check" in kinds


class TestTraceWarning:
    def _process(self, fast):
        kernel = Kernel(71)
        binary = build(SOURCE, "pssp", name="telemetry-trace")
        process, _ = deploy(kernel, binary, "pssp", fast=fast)
        return process

    def test_trace_hook_on_fast_cpu_warns_once(self):
        process = self._process(fast=True)
        with pytest.warns(RuntimeWarning, match="slow interpreter"):
            process.cpu.trace = lambda name, index, instr: None
        # One-time: re-assigning does not warn again.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            process.cpu.trace = lambda name, index, instr: None
            assert process.cpu.trace is not None

    def test_no_warning_on_slow_cpu_or_clearing(self):
        process = self._process(fast=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            process.cpu.trace = lambda name, index, instr: None
            process.cpu.trace = None

    def test_trace_hook_still_forces_slow_loop_with_telemetry(self):
        """A traced run still matches the untraced one bit for bit."""
        reference = _run(SOURCE, "pssp", fast=True)
        process = self._process(fast=True)
        seen = []
        with pytest.warns(RuntimeWarning):
            process.cpu.trace = (
                lambda name, index, instr: seen.append(index)
            )
        result = process.run()
        assert seen  # the hook actually observed instructions
        assert result.cycles == reference.cycles
        assert result.exit_status == reference.exit_status
