"""The fault plane's ledgers and the telemetry counters must agree.

The plane keeps authoritative per-run ledgers (``delivered``,
``absorbed``, ``events``); the telemetry plane mirrors each append into
a process-wide monotonic counter.  These tests pin the mirror at both
levels: unit (every ``record_*`` call ticks its counter) and campaign
(a real chaos run's ledger totals equal the counter deltas).
"""

import pytest

from repro import telemetry
from repro.faults.campaign import canned_invariant_cases, run_chaos_case
from repro.faults.plane import FaultPlane

LEDGER_COUNTERS = (
    "faults_delivered_total",
    "faults_absorbed_total",
    "fault_degradation_events_total",
)


def test_every_ledger_append_ticks_its_counter():
    plane = FaultPlane()
    before = telemetry.snapshot()
    for index in range(3):
        plane.record_delivered("rdrand-fail", f"attempt {index}")
    plane.record_absorbed("rdrand-fail", "retry 1")
    plane.record_absorbed("fork-eagain", "retry 2")
    plane.record_event("entropy-degraded")
    delta = telemetry.delta(before)
    assert delta["faults_delivered_total"] == len(plane.delivered) == 3
    assert delta["faults_absorbed_total"] == len(plane.absorbed) == 2
    assert delta["fault_degradation_events_total"] == len(plane.events) == 1


def test_ledger_mirror_is_silent_while_disabled():
    plane = FaultPlane()
    before = telemetry.snapshot()
    telemetry.disable()
    try:
        plane.record_delivered("tls-torn")
    finally:
        telemetry.enable()
    # The authoritative ledger still recorded it; only the mirror paused.
    assert len(plane.delivered) == 1
    assert telemetry.delta(before).get("faults_delivered_total", 0) == 0


@pytest.mark.slow
@pytest.mark.parametrize(
    "case", canned_invariant_cases(), ids=lambda case: case.name
)
def test_canned_case_ledgers_match_counters(case):
    before = telemetry.snapshot()
    run = run_chaos_case(
        9000,
        spec=case.spec,
        schedule=case.schedule,
        require_store=case.require_store,
        case=case.name,
    )
    delta = telemetry.delta(before)
    assert run.ok, run.violations
    # ChaosRun carries the plane's ledger totals; the counters must
    # account for exactly the same appends (campaign code records
    # nothing else between the snapshots).
    assert delta.get("faults_delivered_total", 0) == sum(
        run.delivered.values()
    )
    assert delta.get("faults_absorbed_total", 0) == run.absorbed
    # Every canned case injects something.
    assert sum(run.delivered.values()) > 0
    # Outcome bookkeeping: exactly one chaos outcome was possible here,
    # and run_chaos_case (unlike run_campaign) does not tick campaign
    # counters — delivered/absorbed come from the plane itself.
    assert delta.get("chaos_cases_total", 0) == 0


@pytest.mark.slow
def test_campaign_outcome_counters_track_runs():
    from repro.faults.campaign import run_campaign

    before = telemetry.snapshot()
    report = run_campaign(4, base_seed=2018, progress=None)
    delta = telemetry.delta(before)
    assert delta.get("chaos_cases_total", 0) == len(report.runs)
    outcome_total = sum(
        value for name, value in delta.items()
        if name.startswith("chaos_outcome_") and isinstance(value, int)
    )
    assert outcome_total == len(report.runs)
    violations = sum(len(run.violations) for run in report.runs)
    assert delta.get("chaos_violations_total", 0) == violations
