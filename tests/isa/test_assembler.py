"""Two-pass assembler behaviour."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble, assemble_one, parse_operand
from repro.isa.instructions import Imm, Label, Mem, Reg, Sym


class TestOperandParsing:
    def test_register(self):
        assert parse_operand("rax") == Reg("rax")

    def test_xmm(self):
        assert parse_operand("xmm15") == Reg("xmm15")

    def test_decimal_and_hex_immediates(self):
        assert parse_operand("42") == Imm(42)
        assert parse_operand("0x2a") == Imm(42)
        assert parse_operand("-8") == Imm(-8)

    def test_memory_base_disp(self):
        assert parse_operand("[rbp-8]") == Mem(base="rbp", disp=-8)
        assert parse_operand("[rbp+0x10]") == Mem(base="rbp", disp=0x10)

    def test_memory_tls(self):
        assert parse_operand("fs:[0x28]") == Mem(seg="fs", disp=0x28)

    def test_memory_indexed(self):
        operand = parse_operand("[rcx+rdx*8]")
        assert operand == Mem(base="rcx", index="rdx", scale=8)

    def test_local_label(self):
        assert parse_operand(".loop") == Label(".loop")

    def test_symbol(self):
        assert parse_operand("strcpy") == Sym("strcpy")

    def test_garbage_rejected(self):
        with pytest.raises(AssemblerError):
            parse_operand("@@@")


class TestAssemble:
    SOURCE = """
    f:
        push rbp
        mov rbp, rsp
        mov rax, 0
    .loop:
        add rax, 1
        cmp rax, 5
        jne .loop
        leave
        ret
    """

    def test_single_function(self):
        function = assemble_one(self.SOURCE)
        assert function.name == "f"
        assert function.body[0].op == "push"
        assert function.labels[".loop"] == 3

    def test_branch_target_bound_to_label(self):
        function = assemble_one(self.SOURCE)
        jne = function.body[5]
        assert jne.op == "jne"
        assert jne.operands[0] == Label(".loop")

    def test_multiple_functions(self):
        functions = assemble("a:\n ret\nb:\n nop\n ret\n")
        assert list(functions) == ["a", "b"]
        assert len(functions["b"]) == 2

    def test_comments_ignored(self):
        function = assemble_one("f:\n nop ; comment\n ret # more\n")
        assert len(function) == 2

    def test_call_symbol(self):
        function = assemble_one("f:\n call strcpy\n ret\n")
        assert function.body[0].operands[0] == Sym("strcpy")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble_one("f:\n jmp .nowhere\n ret\n")

    def test_instruction_outside_function_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("nop\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("f:\n frobnicate rax\n")

    def test_duplicate_function_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("f:\n ret\nf:\n ret\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("f:\n .l:\n nop\n .l:\n ret\n")

    def test_expect_one_function(self):
        with pytest.raises(AssemblerError):
            assemble_one("a:\n ret\nb:\n ret\n")

    def test_forward_reference_to_symbol_that_becomes_label(self):
        function = assemble_one("f:\n jmp out\n nop\n out:\n ret\n")
        # "out:" is indented → local label; the jmp target rebinds to it.
        assert function.body[0].operands[0] == Label("out")
