"""Instruction/operand model invariants."""

import pytest

from repro.isa.instructions import (
    Function,
    Imm,
    Instruction,
    Label,
    Mem,
    Reg,
    Sym,
    ins,
)


class TestOperands:
    def test_reg_validates_name(self):
        Reg("rax")
        Reg("xmm15")
        with pytest.raises(ValueError):
            Reg("eax")  # 32-bit aliases are not modelled

    def test_mem_str_frame_relative(self):
        assert str(Mem(base="rbp", disp=-8)) == "-0x8(%rbp)"

    def test_mem_str_tls(self):
        assert str(Mem(seg="fs", disp=0x28)) == "%fs:0x28"

    def test_mem_str_indexed(self):
        text = str(Mem(base="rcx", index="rdx", scale=8))
        assert "rcx" in text and "rdx" in text and "8" in text

    def test_imm_str(self):
        assert str(Imm(5)) == "$5"
        assert str(Imm(0x28)) == "$0x28"

    def test_sym_and_label_str(self):
        assert str(Sym("fork")) == "<fork>"
        assert str(Label(".out")) == ".out"


class TestInstruction:
    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            Instruction("bogus")

    def test_att_style_printing_swaps_operands(self):
        instruction = ins("mov", Reg("rax"), Mem(seg="fs", disp=0x28))
        assert str(instruction) == "mov %fs:0x28,%rax"

    def test_no_operand_printing(self):
        assert str(ins("ret")) == "ret"

    def test_with_note_preserves_content(self):
        instruction = ins("mov", Reg("rax"), Imm(1))
        tagged = instruction.with_note("ssp-prologue")
        assert tagged.op == instruction.op
        assert tagged.operands == instruction.operands
        assert tagged.note == "ssp-prologue"

    def test_instructions_are_hashable_values(self):
        a = ins("xor", Reg("rax"), Reg("rax"))
        b = ins("xor", Reg("rax"), Reg("rax"))
        assert a == b
        assert hash(a) == hash(b)


class TestFunction:
    def test_emit_and_len(self):
        function = Function("f")
        function.emit("push", Reg("rbp"))
        function.emit("ret")
        assert len(function) == 2

    def test_label_here(self):
        function = Function("f")
        function.emit("nop")
        function.label_here(".after")
        assert function.labels[".after"] == 1

    def test_fresh_label_unique(self):
        function = Function("f")
        names = set()
        for _ in range(5):
            name = function.fresh_label("x")
            function.labels[name] = 0
            names.add(name)
        assert len(names) == 5

    def test_copy_independent(self):
        function = Function("f")
        function.emit("nop")
        function.meta["key"] = 1
        clone = function.copy()
        clone.emit("ret")
        clone.meta["key"] = 2
        assert len(function) == 1
        assert function.meta["key"] == 1

    def test_disassemble_contains_labels(self):
        function = Function("f")
        function.emit("nop")
        function.label_here(".end")
        function.emit("ret")
        listing = function.disassemble()
        assert "f:" in listing and ".end:" in listing and "ret" in listing
