"""Completeness invariants across the ISA tables.

The interpreter keeps three parallel views of the instruction set: the
mnemonic registry (``ALL_OPS``), the cycle-cost table (``_BASE_COSTS``),
and the dispatch table (``_DISPATCH``).  The fast path adds a fourth —
the decode-cache specialisers — which must only ever cover a *subset* of
the dispatch table (anything unspecialised falls back to the generic
closure).  A mnemonic added to one table but not the others dies at
runtime with a KeyError deep inside the run loop; these tests fail it at
collection speed instead.
"""

from repro.isa.costs import _BASE_COSTS, instruction_cost, step_cost
from repro.isa.instructions import (
    ALL_OPS,
    CONDITIONAL_JUMPS,
    CONTROL_TRANSFER_OPS,
    Instruction,
)
from repro.machine.cpu import _DISPATCH


class TestTableCompleteness:
    def test_every_op_has_a_cost(self):
        assert set(_BASE_COSTS) == set(ALL_OPS), (
            f"costs missing: {sorted(ALL_OPS - set(_BASE_COSTS))}; "
            f"costs orphaned: {sorted(set(_BASE_COSTS) - ALL_OPS)}"
        )

    def test_every_op_has_a_dispatch_handler(self):
        assert set(_DISPATCH) == set(ALL_OPS), (
            f"handlers missing: {sorted(ALL_OPS - set(_DISPATCH))}; "
            f"handlers orphaned: {sorted(set(_DISPATCH) - ALL_OPS)}"
        )

    def test_dispatch_and_costs_agree(self):
        assert set(_DISPATCH) == set(_BASE_COSTS)

    def test_control_transfer_ops_are_known(self):
        assert CONTROL_TRANSFER_OPS <= ALL_OPS
        assert CONDITIONAL_JUMPS <= CONTROL_TRANSFER_OPS

    def test_decode_specialisers_are_a_dispatch_subset(self):
        from repro.machine.decode import FunctionDecoder

        # Instantiate against a minimal stand-in: the compiler table is
        # built in __init__ and only needs attribute slots to exist.
        class _StubCPU:
            registers = None
            memory = None
            image = None
            natives = {}
            dbi_multiplier = 1.0

        decoder = FunctionDecoder(_StubCPU(), _DISPATCH)
        unknown = set(decoder._compilers) - ALL_OPS
        assert not unknown, f"specialisers for unknown mnemonics: {sorted(unknown)}"
        assert set(decoder._compilers) <= set(_DISPATCH)


class TestCostConsistency:
    def test_step_cost_matches_instruction_cost(self):
        """``step_cost`` must charge exactly what the slow path charges."""
        for op in sorted(ALL_OPS):
            instruction = Instruction(op, ())
            base = instruction_cost(instruction)
            for dbi in (1.0, 1.22, 2.56):
                # CPU.charge computes base * dbi per instruction; step_cost
                # must reproduce that product and its TSC tick exactly.
                slow = base * dbi
                cycles, ticks = step_cost(instruction, dbi)
                assert cycles == slow, (op, dbi)
                assert ticks == (int(slow) or 1), (op, dbi)

    def test_all_costs_positive(self):
        for op, cost in _BASE_COSTS.items():
            assert cost > 0, f"{op} has non-positive base cost {cost}"
