"""ISA completeness: every declared mnemonic is fully wired up.

A mnemonic that parses but has no cost entry or no CPU semantics is a
latent crash in whatever first emits it; these tests close that gap
structurally.
"""

from repro.isa.costs import _BASE_COSTS
from repro.isa.instructions import ALL_OPS, CONDITIONAL_JUMPS
from repro.machine.cpu import _DISPATCH


class TestCompleteness:
    def test_every_op_has_a_cost(self):
        missing = set(ALL_OPS) - set(_BASE_COSTS)
        assert not missing, f"ops without cycle costs: {sorted(missing)}"

    def test_every_op_has_cpu_semantics(self):
        missing = set(ALL_OPS) - set(_DISPATCH)
        assert not missing, f"ops without CPU handlers: {sorted(missing)}"

    def test_no_orphan_costs(self):
        orphans = set(_BASE_COSTS) - set(ALL_OPS)
        assert not orphans, f"costs for unknown ops: {sorted(orphans)}"

    def test_no_orphan_handlers(self):
        orphans = set(_DISPATCH) - set(ALL_OPS)
        assert not orphans, f"handlers for unknown ops: {sorted(orphans)}"

    def test_conditional_jumps_subset_of_ops(self):
        assert CONDITIONAL_JUMPS <= ALL_OPS

    def test_all_costs_positive(self):
        for op, cost in _BASE_COSTS.items():
            assert cost > 0, op
