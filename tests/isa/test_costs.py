"""Cycle-cost model calibration points."""

from repro.isa.costs import (
    AES_HELPER_COST,
    DBI_MULTIPLIER,
    RDRAND_COST,
    RDTSC_COST,
    instruction_cost,
    sequence_cost,
)
from repro.isa.instructions import Imm, Mem, Reg, ins


class TestCalibration:
    def test_rdrand_dominates(self):
        # Paper: "the rdrand instruction ... costs about 340 more CPU
        # cycles" — the cost anchoring P-SSP-NT's Table V row.
        assert 320 <= RDRAND_COST <= 360

    def test_rdtsc_modest(self):
        assert 20 <= RDTSC_COST <= 30

    def test_aes_pair_lands_near_owf_budget(self):
        # Two helper invocations plus glue must land near 278 cycles.
        assert 200 <= 2 * AES_HELPER_COST + 40 <= 320

    def test_dbi_multiplier_targets_156_percent(self):
        assert 2.3 <= DBI_MULTIPLIER <= 2.8


class TestInstructionCost:
    def test_plain_alu_is_one_cycle(self):
        assert instruction_cost(ins("xor", Reg("rax"), Reg("rax"))) == 1

    def test_memory_operand_surcharge(self):
        reg_form = instruction_cost(ins("mov", Reg("rax"), Reg("rcx")))
        mem_form = instruction_cost(ins("mov", Reg("rax"), Mem(base="rbp", disp=-8)))
        assert mem_form > reg_form

    def test_rdrand_cost_applied(self):
        assert instruction_cost(ins("rdrand", Reg("rax"))) == RDRAND_COST

    def test_sequence_cost_sums(self):
        body = [ins("nop"), ins("nop"), ins("mov", Reg("rax"), Imm(1))]
        assert sequence_cost(body) == sum(instruction_cost(i) for i in body)

    def test_ssp_check_is_cheap(self):
        # The canonical SSP epilogue check should cost single-digit cycles,
        # which is why SSP is the deployable default.
        epilogue = [
            ins("mov", Reg("rdx"), Mem(base="rbp", disp=-8)),
            ins("xor", Reg("rdx"), Mem(seg="fs", disp=0x28)),
        ]
        assert sequence_cost(epilogue) < 10
