"""Byte-length model: the rewriter's layout math depends on these."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble_one
from repro.isa.encoding import encode, encoded_length, function_length
from repro.isa.instructions import Imm, Label, Mem, Reg, Sym, ins
from repro.machine.tls import CANARY_OFFSET, SHADOW_C0_OFFSET


class TestKnownLengths:
    def test_single_byte_instructions(self):
        for op in ("ret", "leave", "nop", "hlt"):
            assert encoded_length(ins(op)) == 1

    def test_push_pop_classic_registers(self):
        assert encoded_length(ins("push", Reg("rbp"))) == 1
        assert encoded_length(ins("pop", Reg("rdi"))) == 1

    def test_push_pop_extended_registers(self):
        assert encoded_length(ins("push", Reg("r12"))) == 2
        assert encoded_length(ins("pop", Reg("r13"))) == 2

    def test_call_rel32(self):
        assert encoded_length(ins("call", Sym("__stack_chk_fail"))) == 5

    def test_conditional_jump_rel8(self):
        assert encoded_length(ins("je", Label(".ok"))) == 2

    def test_xor_tls_is_nine_bytes(self):
        # Matches real x86-64: 64 48 33 14 25 <disp32> — the byte count the
        # epilogue-rewrite budget depends on.
        instruction = ins("xor", Reg("rdx"), Mem(seg="fs", disp=CANARY_OFFSET))
        assert encoded_length(instruction) == 9

    def test_tls_loads_same_length_for_both_offsets(self):
        # The rewriter swaps fs:0x28 → fs:0x2a8 in place; both must encode
        # identically for the prologue substitution to be layout-safe.
        load_canary = ins("mov", Reg("rax"), Mem(seg="fs", disp=CANARY_OFFSET))
        load_shadow = ins("mov", Reg("rax"), Mem(seg="fs", disp=SHADOW_C0_OFFSET))
        assert encoded_length(load_canary) == encoded_length(load_shadow)

    def test_rewrite_epilogue_budget(self):
        # Old window: xor(9) + je(2) + call(5) == new window:
        # push+push+pop+call+pop+je+call (1+1+1+5+1+2+5).
        old = [
            ins("xor", Reg("rdx"), Mem(seg="fs", disp=CANARY_OFFSET)),
            ins("je", Label(".ok")),
            ins("call", Sym("__stack_chk_fail")),
        ]
        new = [
            ins("push", Reg("rdi")),
            ins("push", Reg("rdx")),
            ins("pop", Reg("rdi")),
            ins("call", Sym("__stack_chk_fail")),
            ins("pop", Reg("rdi")),
            ins("je", Label(".ok")),
            ins("call", Sym("__stack_chk_fail")),
        ]
        assert function_length(new) == function_length(old)

    def test_disp8_shorter_than_disp32(self):
        near = encoded_length(ins("mov", Reg("rax"), Mem(base="rbp", disp=-8)))
        far = encoded_length(ins("mov", Reg("rax"), Mem(base="rbp", disp=-0x1000)))
        assert near < far

    def test_rdrand_and_rdtsc(self):
        assert encoded_length(ins("rdrand", Reg("rax"))) == 4
        assert encoded_length(ins("rdtsc")) == 2


class TestEncode:
    def test_encode_length_matches_model(self):
        function = assemble_one(
            "f:\n push rbp\n mov rbp, rsp\n mov rax, fs:[0x28]\n"
            " mov [rbp-8], rax\n leave\n ret\n"
        )
        for instruction in function.body:
            assert len(encode(instruction)) == encoded_length(instruction)

    def test_encode_deterministic(self):
        instruction = ins("mov", Reg("rax"), Imm(7))
        assert encode(instruction) == encode(instruction)

    def test_encode_content_sensitive(self):
        a = encode(ins("mov", Reg("rax"), Imm(7)))
        b = encode(ins("mov", Reg("rax"), Imm(8)))
        assert a != b

    def test_function_length_sums(self):
        body = [ins("nop"), ins("ret")]
        assert function_length(body) == 2


_SAFE_REGS = st.sampled_from(["rax", "rcx", "rdx", "rdi", "rsi", "r8", "r11"])


@settings(max_examples=60, deadline=None)
@given(
    op=st.sampled_from(["mov", "add", "sub", "xor", "and", "or", "cmp"]),
    dst=_SAFE_REGS,
    disp=st.integers(min_value=-4096, max_value=4096),
)
def test_every_two_operand_form_has_positive_length(op, dst, disp):
    for operands in (
        (Reg(dst), Imm(disp)),
        (Reg(dst), Mem(base="rbp", disp=disp)),
        (Mem(base="rbp", disp=disp), Reg(dst)),
    ):
        instruction = ins(op, *operands)
        assert encoded_length(instruction) >= 2
        assert len(encode(instruction)) == encoded_length(instruction)
