"""Every example script must run cleanly and show its headline result.

The examples are the library's front door; a broken example is a broken
deliverable, so each one runs end-to-end here with its key output pinned.
"""

import importlib.util
import pathlib
import sys

import pytest

#: runs every example end to end (incl. fork servers) — excluded from the CI quick-signal subset.
pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "stack smashing detected" in out
        assert "scheme: pssp" in out
        # The unprotected build must NOT report a canary detection.
        none_section = out.split("--- scheme: ssp ---")[0]
        assert "stack smashing detected" not in none_section

    def test_byte_by_byte_attack(self, capsys):
        out = run_example("byte_by_byte_attack.py", capsys)
        assert "ATTACK SUCCEEDED" in out          # ssp falls
        assert out.count("attack FAILED") == 2    # pssp and pssp-nt hold
        assert "recovered canary" in out

    def test_binary_rewriting(self, capsys):
        out = run_example("binary_rewriting.py", capsys)
        assert "expansion: 0" in out              # dynamic: zero bytes
        assert "__pssp_fork" in out               # static: new section
        assert "stack smashing detected" in out

    def test_local_variable_protection(self, capsys):
        out = run_example("local_variable_protection.py", capsys)
        assert "access granted: True" in out      # ssp blind to the flip
        assert "SIGABRT" in out                   # pssp-lv catches it

    def test_exposure_resilience(self, capsys):
        out = run_example("exposure_resilience.py", capsys)
        lines = {line.split()[0]: line for line in out.splitlines()
                 if line and line.split()[0] in
                 ("ssp", "pssp", "pssp-nt", "pssp-owf", "pssp-gb")}
        assert "True" in lines["ssp"].split()[1]       # hijacked
        assert "False" in lines["pssp-owf"].split()[1]  # resisted
        assert "False" in lines["pssp-gb"].split()[1]

    def test_forking_server_compat(self, capsys):
        out = run_example("forking_server_compat.py", capsys)
        assert "SIGABRT" in out                   # raf-ssp child dies
        assert "children clean: True" in out      # mixed builds fine

    def test_server_under_attack(self, capsys):
        out = run_example("server_under_attack.py", capsys)
        assert "server compromised" in out        # ssp campaign lands
        assert "defence held" in out              # pssp campaign stalls
        assert out.count("20/20 served") == 4     # service stays up
